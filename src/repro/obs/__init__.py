"""Cross-layer observability: metrics registry, trace spans, freezable clock.

One import serves every layer of the stack::

    from repro import obs

    _SCOPE = obs.scope("engine")                  # metrics namespace
    _BLOCKS = _SCOPE.counter("blocks")

    with obs.span("engine.block", rows=rows):     # hierarchical tracing
        _BLOCKS.inc()

Three submodules, re-exported flat:

* :mod:`repro.obs.registry` — counters / gauges / log-bucket histograms
  with snapshot, delta, and associative cross-process merge (the layer
  ``GET /metrics`` and ``repro metrics`` serve);
* :mod:`repro.obs.trace` — nested spans, Chrome trace-event export, and
  context propagation through process-pool payloads and the
  ``X-Repro-Trace`` HTTP header;
* :mod:`repro.obs.clock` — the freezable wall clock shared by snapshots
  and the index catalog's ``ingested_at`` column.

Everything here is stdlib-only and imported by the hot layers (kernels,
engine), so this package must never import back into them.
"""

from repro.obs.clock import freeze, frozen, now, perf, unfreeze
from repro.obs.registry import (
    LATENCY_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Scope,
    counter,
    gauge,
    get_registry,
    group_families,
    histogram,
    merge_snapshot,
    merge_snapshots,
    metrics_enabled,
    scope,
    set_metrics_enabled,
    snapshot,
    snapshot_delta,
)
from repro.obs.trace import (
    TRACE_HEADER,
    TraceCollector,
    absorb,
    absorb_events,
    chrome_trace_document,
    current_payload,
    format_trace_header,
    parse_trace_header,
    record_span,
    remote_task,
    span,
    start_collecting,
    stop_collecting,
    trace,
    tracing_active,
)

__all__ = [
    # clock
    "now",
    "perf",
    "freeze",
    "unfreeze",
    "frozen",
    # registry
    "LATENCY_BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Scope",
    "counter",
    "gauge",
    "histogram",
    "scope",
    "get_registry",
    "metrics_enabled",
    "set_metrics_enabled",
    "snapshot",
    "snapshot_delta",
    "merge_snapshot",
    "merge_snapshots",
    "group_families",
    # tracing
    "TRACE_HEADER",
    "TraceCollector",
    "span",
    "record_span",
    "trace",
    "tracing_active",
    "start_collecting",
    "stop_collecting",
    "current_payload",
    "format_trace_header",
    "parse_trace_header",
    "remote_task",
    "absorb",
    "absorb_events",
    "chrome_trace_document",
]
