"""The content-addressed series store.

Every layer above the flat algorithms identifies a series by its content
digest (:func:`repro.api.cache.series_digest` — sha1 of the float64 bytes):
the persistent result cache keys spill files by it, the service keys
sessions by it, the engine's shared-memory segments are reused under it.
What was missing is a place where the digest *resolves back to the values*:
the service re-received the full value array on every request and every
engine call re-packed the same series.  :class:`SeriesStore` is that place —
a small content-addressed blob store:

* one **blob per digest** (``blobs/<digest[:2]>/<digest>.f64``, raw
  little-endian float64) written atomically (unique temp file +
  ``os.replace``), read back memory-mapped so a lookup does not copy the
  series;
* a **JSON manifest** (``manifest.json``) carrying per-entry length, byte
  size, display name and an LRU sequence number, re-written atomically on
  every mutation;
* **byte-capped LRU eviction**: ``max_bytes`` bounds the blob bytes
  retained; inserts evict from the cold end (the newest entry is always
  retained, even when it alone exceeds the cap — evicting what was just
  stored would make ``put`` + ``get`` incoherent);
* a **chunked ingest path** (:meth:`begin` / :class:`ChunkedIngest`) so a
  large series streams into the store — from a socket, a file, a generator
  — without ever existing as one JSON array, with the digest computed (and
  optionally verified) incrementally;
* **degradation, not errors**: a corrupted blob, a digest-mismatched blob
  or a mangled manifest reads back as a *miss* (and is healed best-effort),
  never as wrong values — the same contract the persistent result cache
  established.

The blob format makes verification free of any framing: the sha1 of the
blob's bytes IS the series digest, so :meth:`get` can certify what it
returns by hashing exactly the bytes it mapped.

Concurrency: one store object is thread-safe (a single lock covers manifest
mutations).  Across processes the store is best-effort coherent the same
way the persistent result cache is: atomic renames mean readers only ever
see complete files, and the manifest's last writer wins wholesale.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.exceptions import InvalidParameterError, StoreError
from repro.series.dataseries import DataSeries

_STORE_METRICS = obs.scope("store")
_BLOB_READS = _STORE_METRICS.counter("blob_reads")
_BLOB_MISSES = _STORE_METRICS.counter("blob_misses")
_VERIFY_FAILURES = _STORE_METRICS.counter("verify_failures")
_EVICTIONS = _STORE_METRICS.counter("evictions")
_PUTS = _STORE_METRICS.counter("puts")

__all__ = [
    "SeriesStore",
    "ChunkedIngest",
    "open_data_root",
    "is_series_digest",
    "SERIES_SUBDIR",
    "RESULTS_SUBDIR",
    "DEFAULT_STORE_MAX_BYTES",
]

#: Default byte cap of a store: 256 MiB holds a catalog of ~8 four-million
#: point series — far beyond the test workloads while keeping an unattended
#: service node bounded.
DEFAULT_STORE_MAX_BYTES = 256 * 1024 * 1024

#: Sub-directories a shared data root splits into: the series catalog and
#: the persistent result cache live side by side, keyed by the same series
#: content digest (see :func:`open_data_root`).
SERIES_SUBDIR = "series"
RESULTS_SUBDIR = "results"

_MANIFEST_KIND = "series_store_manifest"
_MANIFEST_NAME = "manifest.json"
_BLOB_SUFFIX = ".f64"
_ITEM_SIZE = 8  # float64


def is_series_digest(text: str) -> bool:
    """Whether ``text`` has the shape of a series content digest (sha1 hex).

    The one shape check shared by every digest boundary — the store, the
    service's ``/series/<digest>`` routes, the ingest verification — so a
    future digest-format change has a single definition to update.
    """
    return (
        isinstance(text, str)
        and len(text) == 40
        and all(ch in "0123456789abcdef" for ch in text)
    )


_is_digest = is_series_digest


class ChunkedIngest:
    """One in-flight streaming upload into a :class:`SeriesStore`.

    Created by :meth:`SeriesStore.begin`; feed it with
    :meth:`append_chunk` (float values) or :meth:`append_bytes` (raw
    float64 bytes, e.g. straight off a socket — chunk boundaries need not
    align to 8 bytes), then :meth:`finalize`.  The digest is computed
    incrementally while the chunks stream into a unique temp file inside
    the store root, so the full series never has to be materialised; the
    temp file is renamed into its content address only when the digest is
    known (and verified, when the caller predicted one).  :meth:`abort`
    (or garbage collection of an unfinished ingest) removes the temp file.
    """

    def __init__(
        self, store: "SeriesStore", name: str, expected_digest: str | None
    ) -> None:
        if expected_digest is not None and not _is_digest(expected_digest):
            raise StoreError(f"not a valid series digest: {expected_digest!r}")
        self._store = store
        self._name = name
        self._expected = expected_digest
        self._sha1 = hashlib.sha1()
        self._bytes = 0
        self._handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=store.root, prefix=".ingest.", suffix=".tmp", delete=False
        )
        self._temp_path = Path(self._handle.name)
        self._done = False

    @property
    def bytes_received(self) -> int:
        """Bytes appended so far."""
        return self._bytes

    def append_chunk(self, values) -> None:
        """Append a chunk of float values (anything array-like)."""
        array = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
        if array.ndim != 1:
            raise StoreError(
                f"ingest chunks must be one-dimensional, got shape {array.shape}"
            )
        self.append_bytes(array.tobytes())

    def append_bytes(self, chunk: bytes) -> None:
        """Append raw float64 bytes (any chunking, 8-byte alignment not required)."""
        if self._done:
            raise StoreError("this ingest is already finalised or aborted")
        self._handle.write(chunk)
        self._sha1.update(chunk)
        self._bytes += len(chunk)

    def finalize(self, expected_digest: str | None = None) -> str:
        """Close the upload; returns the digest of the ingested series.

        ``expected_digest`` (here or at :meth:`SeriesStore.begin`) makes the
        ingest *verifying*: a mismatch raises :class:`StoreError` and leaves
        no trace in the store — the caller shipped different bytes than it
        announced, and content addressing must never file them under the
        announced identity.
        """
        if self._done:
            raise StoreError("this ingest is already finalised or aborted")
        self._done = True
        self._handle.close()
        try:
            if self._bytes == 0 or self._bytes % _ITEM_SIZE:
                raise StoreError(
                    f"ingested {self._bytes} bytes, which is not a non-empty "
                    f"multiple of {_ITEM_SIZE} (float64 values)"
                )
            digest = self._sha1.hexdigest()
            for announced in (self._expected, expected_digest):
                if announced is not None and announced != digest:
                    raise StoreError(
                        f"digest mismatch: the ingested bytes hash to {digest}, "
                        f"not the announced {announced}"
                    )
            self._store._adopt_blob(  # noqa: SLF001 - ingest is the store's own half
                self._temp_path, digest, self._bytes, self._name
            )
        except BaseException:
            self.abort()
            raise
        return digest

    def abort(self) -> None:
        """Drop the upload and its temp file (idempotent)."""
        self._done = True
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - double close on exotic platforms
            pass
        try:
            os.unlink(self._temp_path)
        except OSError:
            pass

    def __enter__(self) -> "ChunkedIngest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        if not getattr(self, "_done", True):
            self.abort()


class SeriesStore:
    """A content-addressed catalog of data series, keyed by value digest.

    Parameters
    ----------
    root:
        Store directory (created on first write).
    max_bytes:
        Byte cap of the retained blobs (LRU eviction beyond it);
        ``None`` disables the cap.
    """

    def __init__(
        self, root, *, max_bytes: int | None = DEFAULT_STORE_MAX_BYTES
    ) -> None:
        if max_bytes is not None and int(max_bytes) < 1:
            raise InvalidParameterError(f"max_bytes must be >= 1, got {max_bytes}")
        self._root = Path(root)
        self._max_bytes = None if max_bytes is None else int(max_bytes)
        self._lock = threading.RLock()
        self._entries: Dict[str, dict] | None = None  # lazy manifest load
        self._sequence = 0
        self._evictions = 0
        self._removal_callbacks: List = []

    def subscribe_removal(self, callback) -> None:
        """Register ``callback(digest)``, fired whenever a blob leaves the
        store (eviction, :meth:`rm`, corruption healing, :meth:`gc` drops).

        Subscribers keep derived state — e.g. a ``repro.index.MotifIndex``
        pruning catalog rows for evicted series — consistent with the store.
        Callbacks run with the store lock held and must not call back into
        the store; a raising callback is swallowed (removal is best-effort
        coordination, never a store failure).
        """
        self._removal_callbacks.append(callback)

    def _notify_removal(self, digest: str) -> None:
        for callback in list(self._removal_callbacks):
            try:
                callback(digest)
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> Path:
        """The store directory (created on demand)."""
        self._root.mkdir(parents=True, exist_ok=True)
        return self._root

    @property
    def max_bytes(self) -> int | None:
        """The byte cap (``None`` when unbounded)."""
        return self._max_bytes

    def blob_path(self, digest: str) -> Path:
        """The content address of one digest's blob."""
        return self._root / "blobs" / digest[:2] / f"{digest}{_BLOB_SUFFIX}"

    @property
    def manifest_path(self) -> Path:
        """The manifest file."""
        return self._root / _MANIFEST_NAME

    # ------------------------------------------------------------------ #
    # manifest handling
    # ------------------------------------------------------------------ #
    def _load_manifest(self) -> Dict[str, dict]:
        """The manifest entries, loaded lazily; corruption degrades to empty.

        A mangled manifest never takes the store down: the blobs are still
        on disk and :meth:`gc` re-adopts every one that verifies.
        """
        if self._entries is None:
            entries: Dict[str, dict] = {}
            sequence = 0
            try:
                payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
                if (
                    isinstance(payload, dict)
                    and payload.get("kind") == _MANIFEST_KIND
                    and isinstance(payload.get("entries"), dict)
                ):
                    for digest, entry in payload["entries"].items():
                        if not _is_digest(digest) or not isinstance(entry, dict):
                            continue
                        entries[digest] = {
                            "bytes": int(entry["bytes"]),
                            "length": int(entry["length"]),
                            "name": str(entry.get("name", "series")),
                            "sequence": int(entry.get("sequence", 0)),
                        }
                    sequence = int(payload.get("sequence", 0))
            except (OSError, ValueError, TypeError, KeyError):
                entries = {}
                sequence = 0
            self._entries = entries
            self._sequence = max(
                [sequence] + [entry["sequence"] for entry in entries.values()]
            )
        return self._entries

    def _write_manifest(self) -> None:
        """Atomically persist the manifest (best-effort: an unwritable
        manifest degrades the store to session-local, not to an error)."""
        payload = {
            "kind": _MANIFEST_KIND,
            "version": 1,
            "sequence": self._sequence,
            "entries": self._entries or {},
        }
        temp_name = None
        try:
            path = self.manifest_path
            with tempfile.NamedTemporaryFile(
                mode="w",
                encoding="utf-8",
                dir=path.parent,
                prefix=f".{path.name}.",
                suffix=".tmp",
                delete=False,
            ) as handle:
                temp_name = handle.name
                json.dump(payload, handle, indent=2)
            os.replace(temp_name, path)
            temp_name = None
        except OSError:
            pass
        finally:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass

    def _touch(self, digest: str) -> None:
        """Bump one entry to the hot end of the LRU order (lock held)."""
        self._sequence += 1
        self._entries[digest]["sequence"] = self._sequence  # type: ignore[index]

    def _evict_over_budget(self) -> None:
        """Drop cold entries until the byte cap holds again (lock held)."""
        if self._max_bytes is None:
            return
        entries = self._entries or {}
        total = sum(entry["bytes"] for entry in entries.values())
        while total > self._max_bytes and len(entries) > 1:
            coldest = min(entries, key=lambda digest: entries[digest]["sequence"])
            total -= entries[coldest]["bytes"]
            self._drop(coldest)

    def _drop(self, digest: str) -> None:
        """Remove one entry and its blob (lock held)."""
        (self._entries or {}).pop(digest, None)
        self._evictions += 1
        _EVICTIONS.inc()
        try:
            self.blob_path(digest).unlink()
        except OSError:
            pass
        self._notify_removal(digest)

    def _adopt_blob(self, temp_path: Path, digest: str, size: int, name: str) -> None:
        """Move a fully-written temp blob into its content address."""
        with self._lock:
            self._load_manifest()
            target = self.blob_path(digest)
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(temp_path, target)
            except OSError as error:
                raise StoreError(f"cannot store blob {digest}: {error}") from error
            self._sequence += 1
            self._entries[digest] = {  # type: ignore[index]
                "bytes": int(size),
                "length": int(size // _ITEM_SIZE),
                "name": str(name),
                "sequence": self._sequence,
            }
            self._evict_over_budget()
            self._write_manifest()

    # ------------------------------------------------------------------ #
    # the public surface
    # ------------------------------------------------------------------ #
    def put(self, series, *, name: str | None = None) -> str:
        """Store one series; returns its content digest.

        Accepts a :class:`~repro.series.DataSeries` (whose name rides
        along), a numpy array or a plain list.  Storing an already-present
        digest refreshes its LRU position without rewriting the blob.
        """
        if isinstance(series, DataSeries):
            values = series.values
            if name is None:
                name = series.name
        else:
            values = np.ascontiguousarray(np.asarray(series, dtype=np.float64))
        if values.ndim != 1 or values.size == 0:
            raise StoreError(
                f"only non-empty one-dimensional series can be stored, "
                f"got shape {values.shape}"
            )
        data = np.ascontiguousarray(values, dtype=np.float64).tobytes()
        digest = hashlib.sha1(data).hexdigest()
        _PUTS.inc()
        with self._lock:
            entries = self._load_manifest()
            if digest in entries and self.blob_path(digest).is_file():
                if name is not None:
                    entries[digest]["name"] = str(name)
                self._touch(digest)
                self._write_manifest()
                return digest
        ingest = self.begin(name=name or "series")
        ingest.append_bytes(data)
        return ingest.finalize(expected_digest=digest)

    def begin(
        self, *, name: str = "series", expected_digest: str | None = None
    ) -> ChunkedIngest:
        """Open a streaming upload (see :class:`ChunkedIngest`)."""
        self.root  # ensure the directory exists before the temp file lands in it
        return ChunkedIngest(self, name, expected_digest)

    def get(self, digest: str) -> Optional[np.ndarray]:
        """The stored values of ``digest`` — or ``None`` on any miss.

        The returned array is a **read-only memory map** of the blob: no
        copy is made, and the bytes were verified against the digest on
        this very call (a corrupted or truncated blob is dropped and
        reported as a miss, so the slot heals on the next ``put``).
        """
        if not _is_digest(digest):
            _BLOB_MISSES.inc()
            return None
        path = self.blob_path(digest)
        # Mapping and hashing happen OUTSIDE the store lock: verifying a
        # large blob takes real time and must not stall every concurrent
        # catalog lookup (a concurrently-unlinked file keeps its mapping
        # valid until released, so the hash itself is race-free).
        try:
            mapped = np.memmap(path, dtype="<f8", mode="r")
        except (OSError, ValueError):
            with self._lock:
                if digest in self._load_manifest() or path.exists():
                    # Present but unmappable (truncated, wrong size):
                    # corrupted — heal the slot.  A plain absent file is the
                    # ordinary miss and drops nothing.
                    _VERIFY_FAILURES.inc()
                    self._drop(digest)
                    self._write_manifest()
            _BLOB_MISSES.inc()
            return None
        if hashlib.sha1(memoryview(mapped).cast("B")).hexdigest() != digest:
            del mapped  # release the mapping before unlinking the file
            _VERIFY_FAILURES.inc()
            _BLOB_MISSES.inc()
            with self._lock:
                self._load_manifest()
                self._drop(digest)
                self._write_manifest()
            return None
        array = mapped.view(np.ndarray)
        array.flags.writeable = False
        _BLOB_READS.inc()
        with self._lock:
            entries = self._load_manifest()
            if digest not in entries:
                # A blob another process (or a pre-manifest crash) left
                # behind: adopt it, it just proved its own integrity.  (Skip
                # if the file vanished mid-verify — adopting would resurrect
                # a concurrent removal.)
                if not path.is_file():
                    return None
                self._sequence += 1
                entries[digest] = {
                    "bytes": int(array.size * _ITEM_SIZE),
                    "length": int(array.size),
                    "name": "series",
                    "sequence": self._sequence,
                }
                self._write_manifest()
            else:
                # An LRU touch mutates only in-memory state: persisting the
                # order on every read would put a disk write on the hot
                # lookup path, and cross-process LRU order is best-effort
                # anyway (the next mutation flushes it).
                self._touch(digest)
            return array

    def load(self, digest: str, *, name: str | None = None) -> Optional[DataSeries]:
        """Like :meth:`get` but wrapped as a :class:`~repro.series.DataSeries`
        (carrying the manifest's display name unless overridden)."""
        values = self.get(digest)
        if values is None:
            return None
        if name is None:
            entry = (self._entries or {}).get(digest)
            name = entry["name"] if entry else "series"
        return DataSeries(values, name=name)

    def entry(self, digest: str) -> Optional[dict]:
        """Manifest metadata of one digest (length, bytes, name) — or
        ``None``.

        A constant-time catalog lookup: no blob read, no verification, no
        LRU touch.  The values themselves still certify on :meth:`get`.
        """
        with self._lock:
            entry = self._load_manifest().get(digest)
            if entry is None or not self.blob_path(digest).is_file():
                return None
            return {
                "digest": digest,
                "length": entry["length"],
                "bytes": entry["bytes"],
                "name": entry["name"],
            }

    def handle(self, digest: str):
        """A picklable :class:`~repro.engine.shm.BlobHandle` for one stored
        blob — or ``None`` when the digest is unknown.

        The zero-copy worker transport: instead of pickling the values into
        a task payload (or repacking them into a shared-memory segment), a
        dispatcher ships this ~100-byte handle and the worker process maps
        ``blobs/<d[:2]>/<digest>.f64`` directly with
        :func:`repro.engine.shm.attach_blob`, which re-verifies the bytes
        against the digest on first attach.  Constant-time: a manifest
        lookup plus one ``stat``, no blob read.
        """
        from repro.engine.shm import BlobHandle

        with self._lock:
            entry = self._load_manifest().get(digest)
            path = self.blob_path(digest)
            if entry is None or not path.is_file():
                return None
            return BlobHandle(
                path=str(path), digest=digest, length=int(entry["length"])
            )

    def __contains__(self, digest: str) -> bool:
        """Manifest membership (no blob verification — that happens on read)."""
        with self._lock:
            return digest in self._load_manifest() and self.blob_path(digest).is_file()

    def __len__(self) -> int:
        with self._lock:
            return len(self._load_manifest())

    @property
    def total_bytes(self) -> int:
        """Blob bytes currently accounted for in the manifest."""
        with self._lock:
            return sum(entry["bytes"] for entry in self._load_manifest().values())

    def ls(self) -> List[dict]:
        """Catalog rows (digest, length, bytes, name), hottest first."""
        with self._lock:
            entries = self._load_manifest()
            rows = [
                {
                    "digest": digest,
                    "length": entry["length"],
                    "bytes": entry["bytes"],
                    "name": entry["name"],
                }
                for digest, entry in sorted(
                    entries.items(),
                    key=lambda item: item[1]["sequence"],
                    reverse=True,
                )
            ]
        return rows

    def rm(self, digest: str) -> bool:
        """Remove one series; returns whether it was present."""
        with self._lock:
            entries = self._load_manifest()
            present = digest in entries or self.blob_path(digest).is_file()
            entries.pop(digest, None)
            try:
                self.blob_path(digest).unlink()
            except OSError:
                pass
            if present:
                self._notify_removal(digest)
            self._write_manifest()
            return present

    def gc(self) -> dict:
        """Reconcile disk and manifest; returns what was repaired.

        * blobs missing their manifest entry are **adopted** when their
          bytes verify against their filename digest, removed otherwise;
        * manifest entries whose blob vanished are dropped;
        * leftover ingest temp files are removed;
        * the byte cap is re-enforced.
        """
        adopted = corrupted = dropped = temp_files = 0
        with self._lock:
            entries = self._load_manifest()
            for stale in [d for d in entries if not self.blob_path(d).is_file()]:
                entries.pop(stale)
                dropped += 1
                self._notify_removal(stale)
            blob_root = self._root / "blobs"
            if blob_root.is_dir():
                for path in sorted(blob_root.glob(f"*/*{_BLOB_SUFFIX}")):
                    digest = path.name[: -len(_BLOB_SUFFIX)]
                    if not _is_digest(digest) or digest in entries:
                        continue
                    if self.get(digest) is not None:
                        adopted += 1
                    else:
                        corrupted += 1
                        # get() heals most corruption itself, but an
                        # unmappable file size slips through its miss path;
                        # gc's contract is that a failed adoption leaves no
                        # debris behind.
                        try:
                            path.unlink()
                        except OSError:
                            pass
                        self._notify_removal(digest)
            for temp in self._root.glob(".ingest.*.tmp"):
                try:
                    temp.unlink()
                    temp_files += 1
                except OSError:
                    pass
            self._evict_over_budget()
            self._write_manifest()
        return {
            "adopted": adopted,
            "corrupted": corrupted,
            "dropped": dropped,
            "temp_files": temp_files,
            "entries": len(self),
            "total_bytes": self.total_bytes,
        }

    def stats(self) -> dict:
        """Occupancy and bounds (for service /stats and the CLI)."""
        with self._lock:
            entries = self._load_manifest()
            return {
                "root": str(self._root),
                "entries": len(entries),
                "total_bytes": sum(entry["bytes"] for entry in entries.values()),
                "max_bytes": self._max_bytes,
                "evictions": self._evictions,
            }


def open_data_root(
    root,
    *,
    store_max_bytes: int | None = DEFAULT_STORE_MAX_BYTES,
):
    """Open the shared digest namespace under one data root.

    Returns ``(series_store, cache_config)``: the series catalog lives in
    ``<root>/series`` and the persistent result cache in ``<root>/results``
    — two sides of the same identity, since both are keyed by the series
    content digest.  Handing ``cache_config`` to an
    :class:`~repro.api.Analysis` session (or a
    :class:`~repro.service.ServiceConfig`) and ``series_store`` to the
    transport layer gives every component one consistent view of "series
    ``<digest>`` and everything already known about it".
    """
    from repro.api.cache import CacheConfig

    root = Path(root)
    store = SeriesStore(root / SERIES_SUBDIR, max_bytes=store_max_bytes)
    cache = CacheConfig(persist_dir=root / RESULTS_SUBDIR)
    return store, cache
