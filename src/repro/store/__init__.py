"""Content-addressed series storage (digest-keyed blobs + manifest).

* :class:`SeriesStore` — the catalog: memory-mapped float64 blobs at
  ``blobs/<digest[:2]>/<digest>.f64``, an atomically-rewritten JSON
  manifest, byte-capped LRU eviction, and a chunked ingest path
  (:meth:`SeriesStore.begin`) for series that must never exist as one
  JSON array;
* :func:`open_data_root` — the shared digest namespace: one root holding
  the series catalog (``<root>/series``) and the persistent result cache
  (``<root>/results``) side by side.

The store is the substrate of the digest-only transport: the service
resolves ``series_digest`` submissions through it, the CLI manages it via
``repro store put/get/ls/rm/gc``, and ``repro.analyze(digest, store=...)``
opens a session without ever holding the values in the caller.
"""

from repro.store.series_store import (
    DEFAULT_STORE_MAX_BYTES,
    RESULTS_SUBDIR,
    SERIES_SUBDIR,
    ChunkedIngest,
    SeriesStore,
    open_data_root,
)

__all__ = [
    "SeriesStore",
    "ChunkedIngest",
    "open_data_root",
    "SERIES_SUBDIR",
    "RESULTS_SUBDIR",
    "DEFAULT_STORE_MAX_BYTES",
]
