"""Command-line interface.

The original system couples a C back-end with a GUI front-end; the library's
CLI provides the equivalent head-less workflow::

    valmod discover --input series.txt --min-length 50 --max-length 200
    valmod generate --workload ecg --length 8192 --output ecg.txt
    valmod compare --workload ecg --min-length 64 --max-length 96
    valmod figure --name fig3-top
    valmod serve --port 8765 --data-dir /var/lib/valmod
    valmod request --url http://127.0.0.1:8765 --workload ecg --length 1024 \
        --kind matrix_profile --params '{"window": 64}'
    valmod store --data-dir /var/lib/valmod put --workload ecg --length 4096
    valmod store --data-dir /var/lib/valmod ls
    valmod query --data-dir /var/lib/valmod "kind=motif length=64..128 top=5"
    valmod index --data-dir /var/lib/valmod backfill

Run ``valmod <command> --help`` for the options of each sub-command.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import obs
from repro._version import __version__
from repro.analysis.ascii_plot import render_valmap
from repro.analysis.report import result_report
from repro.api.cache import CacheConfig
from repro.api.requests import AnalysisRequest
from repro.api.session import EngineConfig, analyze
from repro.matrix_profile.kernels import KERNEL_NAMES
from repro.core.motif_sets import expand_motif_pair
from repro.exceptions import InvalidParameterError, ReproError
from repro.harness.extensions import (
    ablation_anytime_scrimp,
    extension_domains_table,
    skimp_vs_valmod,
    streaming_throughput,
)
from repro.harness.figures import (
    ablation_exactness,
    ablation_lower_bound,
    figure1_fixed_length,
    figure1_valmap,
    figure2_pruning,
    figure3_length_range,
    figure3_series_length,
)
from repro.harness.runner import ALGORITHMS, compare_algorithms
from repro.harness.tables import format_table
from repro.harness.workloads import WORKLOADS, build_workload
from repro.io.serialization import save_result, save_valmap
from repro.series.loaders import load_csv, load_npy, load_text, save_text
from repro.streaming.monitor import StreamingMotifMonitor

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig1-left": figure1_fixed_length,
    "fig1-right": figure1_valmap,
    "fig2": figure2_pruning,
    "fig3-top": figure3_length_range,
    "fig3-bottom": figure3_series_length,
    "ablation-lb": ablation_lower_bound,
    "ablation-exactness": ablation_exactness,
    "ablation-anytime": ablation_anytime_scrimp,
    "ablation-skimp": skimp_vs_valmod,
    "streaming-throughput": streaming_throughput,
    "extension-domains": extension_domains_table,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="valmod",
        description="Exact discovery of variable-length motifs in data series (VALMOD).",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser("discover", help="run VALMOD on a series")
    source = discover.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="path to a text/CSV/npy series file")
    source.add_argument(
        "--workload", choices=sorted(WORKLOADS), help="generate a named synthetic workload"
    )
    discover.add_argument("--length", type=int, default=None, help="workload length (points)")
    discover.add_argument("--min-length", type=int, required=True)
    discover.add_argument("--max-length", type=int, required=True)
    discover.add_argument("--top-k", type=int, default=3)
    discover.add_argument("--profile-capacity", type=int, default=16)
    discover.add_argument("--seed", type=int, default=0, help="workload random seed")
    discover.add_argument(
        "--engine",
        choices=["serial", "parallel", "auto"],
        default=None,
        help="route the profile computations through the block-partitioned "
        "engine (default: the plain serial path)",
    )
    discover.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for --engine parallel/auto (default: all cores)",
    )
    discover.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default=None,
        help="STOMP sweep kernel (default auto: native when compilable, "
        "else numpy)",
    )
    discover.add_argument("--output", help="write the full result as JSON")
    discover.add_argument("--valmap-output", help="write the VALMAP as JSON")
    discover.add_argument(
        "--plot", action="store_true", help="print an ASCII rendering of the VALMAP"
    )
    discover.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSON",
        help="collect a hierarchical trace of the run and write it as "
        "Chrome trace-event JSON (open in chrome://tracing or Perfetto)",
    )

    generate = subparsers.add_parser("generate", help="generate a synthetic workload")
    generate.add_argument("--workload", choices=sorted(WORKLOADS), required=True)
    generate.add_argument("--length", type=int, default=8192)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True, help="output text file (one value per line)")

    compare = subparsers.add_parser("compare", help="compare VALMOD against the baselines")
    compare.add_argument("--workload", choices=sorted(WORKLOADS), default="ecg")
    compare.add_argument("--length", type=int, default=2048)
    compare.add_argument("--min-length", type=int, default=64)
    compare.add_argument("--max-length", type=int, default=79)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--engine",
        choices=["serial", "parallel", "auto"],
        default=None,
        help="execution engine for the engine-aware algorithms",
    )
    compare.add_argument(
        "--jobs", type=int, default=None, help="worker processes for the engine"
    )
    compare.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSON",
        help="collect a hierarchical trace of the comparison and write it "
        "as Chrome trace-event JSON",
    )
    compare.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default=None,
        help="STOMP sweep kernel for the kernel-aware algorithms",
    )
    compare.add_argument(
        "--algorithms",
        nargs="+",
        choices=sorted(ALGORITHMS),
        default=["valmod", "stomp-range", "moen", "quickmotif"],
    )

    figure = subparsers.add_parser("figure", help="regenerate the data behind a paper figure")
    figure.add_argument("--name", choices=sorted(_FIGURES), required=True)
    figure.add_argument("--json", action="store_true", help="print raw JSON rows")

    discords = subparsers.add_parser(
        "discords", help="find variable-length discords (anomalies) in a series"
    )
    discord_source = discords.add_mutually_exclusive_group(required=True)
    discord_source.add_argument("--input", help="path to a text/CSV/npy series file")
    discord_source.add_argument(
        "--workload", choices=sorted(WORKLOADS), help="generate a named synthetic workload"
    )
    discords.add_argument("--length", type=int, default=None, help="workload length (points)")
    discords.add_argument("--min-length", type=int, required=True)
    discords.add_argument("--max-length", type=int, required=True)
    discords.add_argument("--top-k", type=int, default=3)
    discords.add_argument("--seed", type=int, default=0, help="workload random seed")

    motif_set = subparsers.add_parser(
        "motif-set", help="expand the best variable-length motif pair into its motif set"
    )
    motif_source = motif_set.add_mutually_exclusive_group(required=True)
    motif_source.add_argument("--input", help="path to a text/CSV/npy series file")
    motif_source.add_argument(
        "--workload", choices=sorted(WORKLOADS), help="generate a named synthetic workload"
    )
    motif_set.add_argument("--length", type=int, default=None, help="workload length (points)")
    motif_set.add_argument("--min-length", type=int, required=True)
    motif_set.add_argument("--max-length", type=int, required=True)
    motif_set.add_argument(
        "--radius-factor", type=float, default=2.0, help="set radius = factor x pair distance"
    )
    motif_set.add_argument("--seed", type=int, default=0, help="workload random seed")

    stream = subparsers.add_parser(
        "stream", help="replay a workload through the streaming motif monitor"
    )
    stream.add_argument("--workload", choices=sorted(WORKLOADS), default="ecg")
    stream.add_argument("--length", type=int, default=2048, help="total points to replay")
    stream.add_argument(
        "--warmup", type=int, default=1024, help="points ingested before monitoring starts"
    )
    stream.add_argument(
        "--windows", type=int, nargs="+", default=[64], help="subsequence lengths to monitor"
    )
    stream.add_argument("--seed", type=int, default=0)

    distance = subparsers.add_parser(
        "mpdist", help="matrix-profile distance (MPdist) between two series files"
    )
    distance.add_argument("first", help="path to the first series file")
    distance.add_argument("second", help="path to the second series file")
    distance.add_argument("--window", type=int, required=True)
    distance.add_argument("--percentile", type=float, default=0.05)
    distance.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default=None,
        help="AB-join sweep kernel (default auto: native when compilable, "
        "else numpy)",
    )

    serve = subparsers.add_parser(
        "serve", help="run the asyncio analysis service over AnalysisRequest JSON"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="0 picks a free port")
    serve.add_argument(
        "--workers", type=int, default=1, help="worker tasks draining the queue"
    )
    serve.add_argument(
        "--worker-kind",
        choices=["thread", "process"],
        default="thread",
        help="run computations on threads (default) or an engine process "
        "pool (CPU-bound jobs overlap without the GIL; degrades to threads "
        "where process pools are unavailable)",
    )
    serve.add_argument(
        "--backlog",
        type=int,
        default=32,
        help="queued requests beyond which submissions are answered 503",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=8, help="per-series sessions kept (LRU)"
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="result-cache entry bound per session",
    )
    serve.add_argument(
        "--cache-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="result-cache byte bound per session",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result-cache directory (survives restarts)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help="shared digest-namespace root: wires the series store to "
        "<dir>/series and the persistent result cache to <dir>/results "
        "(--store-dir / --cache-dir override the halves individually)",
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        help="content-addressed series store directory (enables digest-only "
        "requests to survive restarts and session eviction)",
    )
    serve.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        help="byte cap of the series store (default: 256 MiB)",
    )
    serve.add_argument(
        "--index-dir",
        default=None,
        help="motif/discord catalog directory (enables GET /query; wired to "
        "<data-dir>/index automatically when --data-dir is given)",
    )
    serve.add_argument(
        "--engine",
        choices=["serial", "parallel", "auto"],
        default=None,
        help="execution engine for the engine-aware algorithms",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, help="worker processes for the engine"
    )
    serve.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default=None,
        help="STOMP sweep kernel for the engine-aware algorithms",
    )
    serve.add_argument(
        "--prewarm",
        action="store_true",
        help="with --worker-kind process: spawn the pool and round-trip a "
        "ping through every worker before accepting traffic, so the first "
        "request does not pay the pool start-up",
    )

    request = subparsers.add_parser(
        "request", help="post one AnalysisRequest to a running analysis service"
    )
    request.add_argument(
        "--url", default="http://127.0.0.1:8765", help="service endpoint"
    )
    request_source = request.add_mutually_exclusive_group(required=True)
    request_source.add_argument("--input", help="path to a text/CSV/npy series file")
    request_source.add_argument(
        "--workload", choices=sorted(WORKLOADS), help="generate a named synthetic workload"
    )
    request.add_argument("--length", type=int, default=None, help="workload length (points)")
    request.add_argument("--seed", type=int, default=0, help="workload random seed")
    request.add_argument(
        "--kind",
        default=None,
        help="analysis kind (matrix_profile, motifs, discords, pan_profile, ...)",
    )
    request.add_argument("--algo", default=None, help="algorithm key (kind default if omitted)")
    request.add_argument(
        "--params",
        default="{}",
        help='algorithm parameters as a JSON object, e.g. \'{"window": 64}\'',
    )
    request.add_argument(
        "--request-file",
        default=None,
        help="read the request document from a save_analysis_request JSON file "
        "instead of --kind/--algo/--params",
    )
    request.add_argument(
        "--timeout", type=float, default=300.0, help="response timeout (seconds)"
    )
    request.add_argument(
        "--transport",
        choices=["digest", "values"],
        default="digest",
        help="series transport: 'digest' (default) negotiates the "
        "digest-only protocol (upload once, then ship ~60 bytes per "
        "request); 'values' inlines the series in every submission",
    )
    request.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSON",
        help="collect a hierarchical trace of the request — including the "
        "server-side spans propagated back over X-Repro-Trace — and write "
        "it as Chrome trace-event JSON",
    )

    metrics = subparsers.add_parser(
        "metrics",
        help="print observability metrics: scrape a running service's "
        "GET /metrics, or run VALMOD locally and report the registry "
        "(including the per-length pruning-power gauges)",
    )
    metrics.add_argument(
        "--url", default=None, help="running service endpoint to scrape"
    )
    metrics.add_argument(
        "--since",
        default=None,
        help="window token from a previous scrape: report the delta since "
        "that scrape instead of process-lifetime totals (service mode)",
    )
    metrics.add_argument(
        "--family",
        default=None,
        help="print only one metric family (engine, cache, store, valmod, "
        "service, index, session, ...)",
    )
    metrics_source = metrics.add_mutually_exclusive_group(required=False)
    metrics_source.add_argument(
        "--input", help="path to a text/CSV/npy series file (local run mode)"
    )
    metrics_source.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        help="generate a named synthetic workload (local run mode)",
    )
    metrics.add_argument(
        "--length", type=int, default=None, help="workload length (points)"
    )
    metrics.add_argument("--seed", type=int, default=0, help="workload random seed")
    metrics.add_argument(
        "--min-length", type=int, default=None, help="VALMOD range lower bound"
    )
    metrics.add_argument(
        "--max-length", type=int, default=None, help="VALMOD range upper bound"
    )

    store = subparsers.add_parser(
        "store", help="manage the content-addressed series store"
    )
    store.add_argument(
        "--data-dir",
        required=True,
        help="shared digest-namespace root (the store lives in <dir>/series, "
        "next to the <dir>/results persistent result cache)",
    )
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte cap of the store (default: 256 MiB)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_put = store_sub.add_parser("put", help="ingest a series, print its digest")
    put_source = store_put.add_mutually_exclusive_group(required=True)
    put_source.add_argument("--input", help="path to a text/CSV/npy series file")
    put_source.add_argument(
        "--workload", choices=sorted(WORKLOADS), help="generate a named synthetic workload"
    )
    store_put.add_argument("--length", type=int, default=None, help="workload length")
    store_put.add_argument("--seed", type=int, default=0, help="workload random seed")
    store_put.add_argument("--name", default=None, help="display name override")

    store_get = store_sub.add_parser(
        "get", help="resolve a digest (verify + print, or export the values)"
    )
    store_get.add_argument("digest", help="series content digest (sha1 hex)")
    store_get.add_argument(
        "--output", default=None, help="write the values to a text file"
    )

    store_sub.add_parser("ls", help="list the catalog, hottest first")

    store_rm = store_sub.add_parser("rm", help="remove one series")
    store_rm.add_argument("digest", help="series content digest (sha1 hex)")

    store_sub.add_parser(
        "gc", help="reconcile blobs and manifest, enforce the byte cap"
    )

    query = subparsers.add_parser(
        "query",
        help="query the motif/discord catalog (a local --data-dir index, or a "
        "running service's GET /query)",
    )
    query.add_argument(
        "query",
        nargs="?",
        default="",
        help="whitespace-separated key=value filters: kind=motif|discord|"
        "motif_set, digest=<sha1>, name=<substring>, algorithm=<key>, "
        "length=<a>..<b>, score=<a>..<b>, top=<k>, order=score|-score|"
        "length|-length, trim=true (overlap-trimmed top-k); empty matches "
        "everything",
    )
    query_target = query.add_mutually_exclusive_group(required=True)
    query_target.add_argument(
        "--data-dir", help="shared data root whose <dir>/index/catalog.db to query"
    )
    query_target.add_argument(
        "--url", help="running service endpoint (uses GET /query)"
    )

    index = subparsers.add_parser(
        "index", help="manage the motif/discord catalog of one data root"
    )
    index.add_argument(
        "--data-dir",
        required=True,
        help="shared digest-namespace root (the catalog lives in <dir>/index)",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_sub.add_parser(
        "backfill",
        help="walk the existing <dir>/results cache envelopes and "
        ".valmod.json sidecars into the catalog (idempotent)",
    )
    index_sub.add_parser("stats", help="print catalog size and counters")

    return parser


def _load_series(path: str):
    if path.endswith(".npy"):
        return load_npy(path)
    if path.endswith(".csv"):
        return load_csv(path)
    return load_text(path)


def _command_discover(args: argparse.Namespace) -> int:
    if args.input:
        series = _load_series(args.input)
    else:
        series = build_workload(args.workload, args.length, random_state=args.seed)
    session = analyze(
        series,
        engine=EngineConfig(
            executor=args.engine, n_jobs=args.jobs, kernel=args.kernel
        ),
    )
    result = session.motifs(
        args.min_length,
        args.max_length,
        method="valmod",
        top_k=args.top_k,
        profile_capacity=args.profile_capacity,
    ).value
    print(result_report(result, top_k=args.top_k))
    if args.plot:
        print()
        print(render_valmap(result.valmap))
    if args.output:
        save_result(result, args.output)
        print(f"\nresult written to {args.output}")
    if args.valmap_output:
        save_valmap(result.valmap, args.valmap_output)
        print(f"VALMAP written to {args.valmap_output}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    series = build_workload(args.workload, args.length, random_state=args.seed)
    save_text(series, args.output)
    print(f"{series.name}: {len(series)} points written to {args.output}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    series = build_workload(args.workload, args.length, random_state=args.seed)
    results = compare_algorithms(
        series,
        args.min_length,
        args.max_length,
        algorithms=args.algorithms,
        top_k=1,
        engine=args.engine,
        n_jobs=args.jobs,
        kernel=args.kernel,
    )
    print(
        f"workload={args.workload} length={len(series)} "
        f"range=[{args.min_length}, {args.max_length}]"
    )
    print(f"{'algorithm':<16}{'seconds':>10}  best pair (normalised distance)")
    for result in results:
        best = result.best_overall()
        print(
            f"{result.algorithm:<16}{result.elapsed_seconds:>10.3f}  "
            f"length={best.window} offsets=({best.offset_a}, {best.offset_b}) "
            f"dn={best.normalized_distance:.4f}"
        )
    return 0


def _jsonable(value):
    """Best-effort conversion of figure rows (may contain numpy arrays) to JSON."""
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, (np.integer, np.floating)):
            return value.item()
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _command_figure(args: argparse.Namespace) -> int:
    rows = _FIGURES[args.name]()
    rows = rows if isinstance(rows, list) else [rows]
    if args.json:
        print(json.dumps(_jsonable(rows), indent=2))
        return 0
    for row in rows:
        printable = {
            key: value
            for key, value in row.items()
            if not hasattr(value, "shape")  # skip raw arrays in the table view
        }
        print(json.dumps(_jsonable(printable)))
    return 0


def _series_from_args(args: argparse.Namespace):
    """Shared --input / --workload resolution for the analysis sub-commands."""
    if getattr(args, "input", None):
        return _load_series(args.input)
    return build_workload(args.workload, args.length, random_state=args.seed)


def _command_discords(args: argparse.Namespace) -> int:
    session = analyze(_series_from_args(args))
    discords = session.discords(args.min_length, args.max_length, k=args.top_k).value
    rows = [discord.as_dict() for discord in discords]
    if not rows:
        print("no discord found (the series may be too short for the requested range)")
        return 0
    print(format_table(rows))
    return 0


def _command_motif_set(args: argparse.Namespace) -> int:
    series = _series_from_args(args)
    session = analyze(series)
    best = session.motifs(
        args.min_length, args.max_length, method="valmod", top_k=1
    ).best_motif()
    motif_set = expand_motif_pair(series, best, radius_factor=args.radius_factor)
    print(
        f"best motif pair: length={best.window} offsets=({best.offset_a}, {best.offset_b}) "
        f"dn={best.normalized_distance:.4f}"
    )
    print(
        f"motif set: {len(motif_set)} occurrences within radius {motif_set.radius:.4f}"
    )
    rows = [
        {"occurrence": offset, "distance_to_pair": distance}
        for offset, distance in zip(motif_set.occurrences, motif_set.distances)
    ]
    print(format_table(rows))
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    series = build_workload(args.workload, args.length, random_state=args.seed)
    values = series.values
    warmup = min(max(args.warmup, max(args.windows) * 2), len(values) - 1)
    monitor = StreamingMotifMonitor(values[:warmup], windows=args.windows)
    events = monitor.extend(values[warmup:])
    print(
        f"replayed {len(values) - warmup} points of {series.name!r} after a "
        f"{warmup}-point warm-up; {len(events)} events"
    )
    if events:
        print(format_table([event.as_dict() for event in events]))
    for window in monitor.windows:
        best = monitor.best_motif(window)
        print(
            f"final best motif @ length {window}: offsets=({best.offset_a}, {best.offset_b}) "
            f"distance={best.distance:.4f}"
        )
    return 0


def _command_mpdist(args: argparse.Namespace) -> int:
    first = analyze(_load_series(args.first))
    second = analyze(_load_series(args.second))
    options = {} if args.kernel is None else {"kernel": args.kernel}
    value = first.mpdist(
        second, args.window, percentile=args.percentile, **options
    ).value
    print(f"MPdist(window={args.window}, percentile={args.percentile}) = {value:.6f}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.server import ServiceConfig, serve_forever
    from repro.store import RESULTS_SUBDIR, SERIES_SUBDIR

    cache_dir = args.cache_dir
    store_dir = args.store_dir
    index_dir = args.index_dir
    if args.data_dir is not None:
        # The shared digest namespace: series catalog, result cache and
        # motif index side by side under one root; the specific flags still
        # override.
        if cache_dir is None:
            cache_dir = Path(args.data_dir) / RESULTS_SUBDIR
        if store_dir is None:
            store_dir = Path(args.data_dir) / SERIES_SUBDIR
        if index_dir is None:
            from repro.index import INDEX_SUBDIR

            index_dir = Path(args.data_dir) / INDEX_SUBDIR
    store_kwargs = {}
    if args.store_max_bytes is not None:
        store_kwargs["store_max_bytes"] = args.store_max_bytes
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker_kind=args.worker_kind,
        backlog=args.backlog,
        max_sessions=args.max_sessions,
        cache=CacheConfig(
            max_entries=args.cache_entries,
            max_bytes=args.cache_bytes,
            persist_dir=cache_dir,
        ),
        engine=EngineConfig(executor=args.engine, n_jobs=args.jobs, kernel=args.kernel),
        store_dir=store_dir,
        index_dir=index_dir,
        prewarm=getattr(args, "prewarm", False),
        **store_kwargs,
    )
    serve_forever(config)
    return 0


def _command_request(args: argparse.Namespace) -> int:
    from repro.io.serialization import load_analysis_request
    from repro.service.client import ServiceClient

    if args.request_file:
        request = load_analysis_request(args.request_file)
    else:
        if not args.kind:
            raise InvalidParameterError(
                "provide --kind (with optional --algo/--params) or --request-file"
            )
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as error:
            raise InvalidParameterError(
                f"--params is not valid JSON: {error}"
            ) from error
        if not isinstance(params, dict):
            raise InvalidParameterError("--params must be a JSON object")
        request = AnalysisRequest(kind=args.kind, algo=args.algo, params=params)
    series = _series_from_args(args)
    with ServiceClient.from_url(args.url, timeout=args.timeout) as client:
        # The root span gives --trace a client-side anchor; without an
        # open span there is no trace position to send in X-Repro-Trace.
        request_kind = (
            request.kind
            if isinstance(request, AnalysisRequest)
            else dict(request).get("kind")
        )
        with obs.span("client.analyze", kind=request_kind):
            status, payload = client.analyze_raw(
                series,
                request,
                series_name=series.name,
                transport=getattr(args, "transport", "digest"),
            )
        ServiceClient._raise_for_status(status, payload, "analysis request failed")
    document = payload["result"]
    document["cache"] = str(payload.get("cache", "unknown"))
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def _command_store(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.store import SERIES_SUBDIR, SeriesStore

    kwargs = {} if args.max_bytes is None else {"max_bytes": args.max_bytes}
    store = SeriesStore(Path(args.data_dir) / SERIES_SUBDIR, **kwargs)
    index = None
    if args.store_command in ("rm", "gc"):
        # Removing a series must take its catalog rows with it — but only
        # when a catalog already exists; plain store maintenance must not
        # conjure an index directory.
        from repro.index import MotifIndex, catalog_path

        catalog = catalog_path(args.data_dir)
        if catalog.is_file():
            index = MotifIndex(catalog)
            store.subscribe_removal(index.remove_series)
    try:
        return _run_store_command(args, store)
    finally:
        if index is not None:
            index.close()


def _run_store_command(args: argparse.Namespace, store) -> int:
    if args.store_command == "put":
        series = _series_from_args(args)
        digest = store.put(series, name=args.name)
        print(
            f"stored {series.name!r}: {len(series)} points, "
            f"{len(series) * 8} bytes\ndigest: {digest}"
        )
        return 0
    if args.store_command == "get":
        series = store.load(args.digest)
        if series is None:
            print(f"error: digest {args.digest} is not in the store", file=sys.stderr)
            return 2
        if args.output:
            save_text(series, args.output)
            print(f"{len(series)} points written to {args.output}")
        else:
            print(json.dumps({"digest": args.digest, **series.describe()}, indent=2))
        return 0
    if args.store_command == "ls":
        rows = store.ls()
        if not rows:
            print("the store is empty")
        else:
            print(format_table(rows))
            stats = store.stats()
            print(
                f"{stats['entries']} series, {stats['total_bytes']} bytes "
                f"(cap: {stats['max_bytes']})"
            )
        return 0
    if args.store_command == "rm":
        if store.rm(args.digest):
            print(f"removed {args.digest}")
            return 0
        print(f"error: digest {args.digest} is not in the store", file=sys.stderr)
        return 2
    if args.store_command == "gc":
        print(json.dumps(store.gc(), indent=2))
        return 0
    raise InvalidParameterError(f"unknown store command {args.store_command!r}")


def _command_metrics(args: argparse.Namespace) -> int:
    if args.url:
        from repro.service.client import ServiceClient

        with ServiceClient.from_url(args.url) as client:
            document = client.metrics(since=args.since)
        if args.family:
            document["families"] = {
                args.family: document.get("families", {}).get(
                    args.family, {"counters": {}, "gauges": {}, "histograms": {}}
                )
            }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    # Local mode: optionally run VALMOD first so the paper-facing gauges
    # (valmod.pruning_power.len<L>, valmod.pruning_power.overall) are
    # populated, then print the process registry grouped by family.
    if args.input or args.workload:
        if args.min_length is None or args.max_length is None:
            raise InvalidParameterError(
                "a local metrics run needs --min-length and --max-length "
                "(the VALMOD motif range)"
            )
        series = _series_from_args(args)
        session = analyze(series)
        session.motifs(args.min_length, args.max_length, method="valmod")
    snapshot = obs.snapshot()
    document = {
        "at": snapshot.get("at"),
        "enabled": obs.metrics_enabled(),
        "families": obs.group_families(snapshot),
    }
    if args.family:
        document["families"] = {
            args.family: document["families"].get(
                args.family, {"counters": {}, "gauges": {}, "histograms": {}}
            )
        }
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def _command_query(args: argparse.Namespace) -> int:
    # CLI and HTTP answer the identical document: the local path prints
    # MotifIndex.answer(spec) and the service's GET /query returns the very
    # same method's output, so the two front ends can be diffed byte for
    # byte (the tests do).
    if args.url:
        from repro.service.client import ServiceClient

        with ServiceClient.from_url(args.url) as client:
            document = client.query(args.query)
    else:
        from repro.index import QuerySpec, open_motif_index

        spec = QuerySpec.parse(args.query)
        with open_motif_index(args.data_dir) as index:
            document = index.answer(spec)
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def _command_index(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.index import open_motif_index

    with open_motif_index(args.data_dir) as index:
        if args.index_command == "backfill":
            report = index.backfill(Path(args.data_dir))
            print(json.dumps({**report, "rows": index.count()}, indent=2))
            return 0
        if args.index_command == "stats":
            print(json.dumps(index.stats(), indent=2, sort_keys=True))
            return 0
    raise InvalidParameterError(f"unknown index command {args.index_command!r}")


_COMMANDS = {
    "discover": _command_discover,
    "generate": _command_generate,
    "compare": _command_compare,
    "figure": _command_figure,
    "discords": _command_discords,
    "motif-set": _command_motif_set,
    "stream": _command_stream,
    "mpdist": _command_mpdist,
    "serve": _command_serve,
    "request": _command_request,
    "metrics": _command_metrics,
    "store": _command_store,
    "query": _command_query,
    "index": _command_index,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    try:
        if trace_path:
            # Everything the command does — engine blocks, kernel sweeps,
            # worker processes, even server-side spans of a `request` —
            # lands in one Chrome trace-event file.
            with obs.trace(trace_path):
                code = _COMMANDS[args.command](args)
            print(f"trace written to {trace_path}", file=sys.stderr)
            return code
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
