"""Subsequence extraction and window iteration helpers."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.series.validation import validate_series, validate_subsequence_length

__all__ = [
    "subsequence_count",
    "subsequence_view",
    "extract_subsequence",
    "iter_subsequences",
]


def subsequence_count(series_length: int, window: int) -> int:
    """Number of subsequences of length ``window`` in a series of the given length."""
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if window > series_length:
        raise InvalidParameterError(
            f"window {window} exceeds series length {series_length}"
        )
    return series_length - window + 1


def subsequence_view(series, window: int) -> np.ndarray:
    """Zero-copy 2-D view whose row ``i`` is ``series[i:i+window]``."""
    array = validate_series(series)
    window = validate_subsequence_length(array.size, window, minimum=1)
    return np.lib.stride_tricks.sliding_window_view(array, window)


def extract_subsequence(series, start: int, window: int) -> np.ndarray:
    """Copy of the subsequence of length ``window`` starting at ``start``."""
    array = validate_series(series)
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if start < 0 or start + window > array.size:
        raise InvalidParameterError(
            f"subsequence [{start}, {start + window}) out of bounds "
            f"for a series of length {array.size}"
        )
    return np.array(array[start : start + window])


def iter_subsequences(series, window: int, step: int = 1) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(offset, subsequence)`` pairs, optionally with a stride.

    The returned subsequences are copies, so callers may mutate them freely.
    """
    array = validate_series(series)
    window = validate_subsequence_length(array.size, window, minimum=1)
    if step < 1:
        raise InvalidParameterError(f"step must be >= 1, got {step}")
    for offset in range(0, array.size - window + 1, step):
        yield offset, np.array(array[offset : offset + window])
