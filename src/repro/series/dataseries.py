"""The :class:`DataSeries` container.

A thin, immutable wrapper around a one-dimensional numpy array that carries
the metadata the rest of the library (and the demo front-end it replaces)
needs: a name, an optional sampling rate, and optional per-point annotations
(e.g. ground-truth motif locations produced by the synthetic generators).

The paper uses the terms *time series*, *data series* and *sequence*
interchangeably; so does this library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.series.validation import validate_series

__all__ = ["DataSeries", "as_series"]


def as_series(series, *, name: str | None = None, **kwargs: Any) -> "DataSeries":
    """Coerce any accepted series input into a validated :class:`DataSeries`.

    Accepts a :class:`DataSeries` (returned as-is, unless ``name`` renames
    it), a numpy array, a plain Python list/tuple, or anything
    :func:`numpy.asarray` understands.  This is the single normalisation
    point the :class:`repro.api.Analysis` session and the savers use instead
    of re-validating per call.
    """
    if isinstance(series, DataSeries):
        if name is None or name == series.name:
            return series
        return DataSeries(
            np.array(series.values),
            name=name,
            sampling_rate=series.sampling_rate,
            metadata=series.metadata,
        )
    return DataSeries(
        np.asarray(series, dtype=np.float64), name=name or "series", **kwargs
    )


@dataclass(frozen=True)
class DataSeries:
    """An immutable, validated one-dimensional data series.

    Parameters
    ----------
    values:
        The raw points.  Validated and stored as a read-only float64 array.
    name:
        Human-readable identifier used in reports and plots.
    sampling_rate:
        Optional number of points per unit of the ordering dimension (e.g. Hz
        for time series); purely informational.
    metadata:
        Free-form mapping (generator parameters, ground-truth annotations...).
    """

    values: np.ndarray
    name: str = "series"
    sampling_rate: float | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        array = validate_series(self.values, name=self.name or "series")
        array.flags.writeable = False
        object.__setattr__(self, "values", array)
        object.__setattr__(self, "metadata", dict(self.metadata))
        if self.sampling_rate is not None and self.sampling_rate <= 0:
            raise InvalidParameterError(
                f"sampling_rate must be positive, got {self.sampling_rate}"
            )

    # ------------------------------------------------------------------ #
    # sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.values.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, index):
        result = self.values[index]
        if isinstance(index, slice):
            return DataSeries(
                np.array(result),
                name=f"{self.name}[{index.start}:{index.stop}]",
                sampling_rate=self.sampling_rate,
                metadata=self.metadata,
            )
        return float(result)

    def __array__(self, dtype=None) -> np.ndarray:
        if dtype is None:
            return np.array(self.values)
        return np.asarray(self.values, dtype=dtype)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataSeries):
            return NotImplemented
        return (
            self.name == other.name
            and self.sampling_rate == other.sampling_rate
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self) -> int:  # frozen dataclass with an array needs a manual hash
        return hash((self.name, self.sampling_rate, self.values.tobytes()))

    def __repr__(self) -> str:
        return (
            f"DataSeries(name={self.name!r}, length={len(self)}, "
            f"mean={float(self.values.mean()):.4g}, std={float(self.values.std()):.4g})"
        )

    # ------------------------------------------------------------------ #
    # convenience constructors and views
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values, name: str = "series", **kwargs: Any) -> "DataSeries":
        """Build a series from any array-like object."""
        return cls(np.asarray(values, dtype=np.float64), name=name, **kwargs)

    def subsequence(self, start: int, length: int) -> np.ndarray:
        """Return a *copy* of ``values[start:start+length]``.

        Raises if the window falls outside the series.
        """
        if length < 1:
            raise InvalidParameterError(f"length must be >= 1, got {length}")
        if start < 0 or start + length > len(self):
            raise InvalidParameterError(
                f"subsequence [{start}, {start + length}) out of bounds for length {len(self)}"
            )
        return np.array(self.values[start : start + length])

    def prefix(self, length: int) -> "DataSeries":
        """Return the first ``length`` points as a new series.

        Used by the scalability experiments, which evaluate prefixes of a
        dataset of increasing size (Figure 3, bottom).
        """
        if length < 1 or length > len(self):
            raise InvalidParameterError(
                f"prefix length {length} out of range [1, {len(self)}]"
            )
        return DataSeries(
            np.array(self.values[:length]),
            name=f"{self.name}[:{length}]",
            sampling_rate=self.sampling_rate,
            metadata=self.metadata,
        )

    def with_metadata(self, **entries: Any) -> "DataSeries":
        """Return a copy with ``entries`` merged into the metadata mapping."""
        merged = dict(self.metadata)
        merged.update(entries)
        return DataSeries(
            np.array(self.values),
            name=self.name,
            sampling_rate=self.sampling_rate,
            metadata=merged,
        )

    def digest(self) -> str:
        """Content digest (sha1 hex) of the values.

        The identity the result caches and the service layer key work by:
        two series with identical values share one digest regardless of
        their name, sampling rate or metadata.
        """
        from repro.api.cache import series_digest

        return series_digest(self.values)

    # ------------------------------------------------------------------ #
    # summary statistics
    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, float]:
        """Return basic summary statistics (used by reports and the CLI)."""
        values = self.values
        return {
            "length": float(values.size),
            "mean": float(values.mean()),
            "std": float(values.std()),
            "min": float(values.min()),
            "max": float(values.max()),
            "median": float(np.median(values)),
        }
