"""Validation helpers shared by every algorithm entry point.

All public algorithms funnel their inputs through these functions so that a
bad series or an impossible length range fails fast with a clear,
library-specific exception instead of a numpy broadcasting error deep inside
an FFT.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import (
    InvalidSeriesError,
    LengthRangeError,
    SubsequenceLengthError,
)

__all__ = ["validate_series", "validate_subsequence_length", "validate_length_range"]


def validate_series(series, *, min_length: int = 2, name: str = "series") -> np.ndarray:
    """Return ``series`` as a validated, contiguous 1-D float64 array.

    Accepts anything :func:`numpy.asarray` accepts plus :class:`DataSeries`
    (anything exposing ``.values``).  Rejects empty, non-1-D, non-finite and
    too-short inputs.
    """
    if hasattr(series, "values") and not isinstance(series, np.ndarray):
        series = series.values
    array = np.asarray(series, dtype=np.float64)
    if array.ndim != 1:
        raise InvalidSeriesError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size < min_length:
        raise InvalidSeriesError(
            f"{name} must contain at least {min_length} points, got {array.size}"
        )
    if not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise InvalidSeriesError(
            f"{name} contains {bad} NaN/inf values; clean it with "
            f"repro.series.fill_missing first"
        )
    return np.ascontiguousarray(array)


def validate_subsequence_length(series_length: int, window: int, *, minimum: int = 3) -> int:
    """Validate a subsequence length against the series it will slide over.

    The minimum of 3 points matches the matrix-profile convention: shorter
    windows have degenerate z-normalised shapes.
    """
    window = int(window)
    if window < minimum:
        raise SubsequenceLengthError(window, series_length, f"must be >= {minimum}")
    if window > series_length // 2 + 1 and window > series_length - 1:
        raise SubsequenceLengthError(window, series_length, "longer than the series allows")
    if series_length - window + 1 < 2:
        raise SubsequenceLengthError(
            window, series_length, "the series must contain at least two subsequences"
        )
    return window


def validate_length_range(
    series_length: int,
    min_length: int,
    max_length: int,
    *,
    minimum: int = 3,
) -> tuple[int, int]:
    """Validate a VALMOD length range ``[min_length, max_length]``."""
    min_length = int(min_length)
    max_length = int(max_length)
    if min_length > max_length:
        raise LengthRangeError(min_length, max_length, "min_length exceeds max_length")
    validate_subsequence_length(series_length, min_length, minimum=minimum)
    try:
        validate_subsequence_length(series_length, max_length, minimum=minimum)
    except SubsequenceLengthError as error:
        raise LengthRangeError(min_length, max_length, str(error)) from error
    return min_length, max_length
