"""Data-series substrate: containers, loaders, preprocessing and windowing."""

from repro.series.dataseries import DataSeries, as_series
from repro.series.loaders import (
    load_csv,
    load_npy,
    load_text,
    save_csv,
    save_npy,
    save_text,
)
from repro.series.preprocessing import (
    clip_outliers,
    detrend,
    downsample,
    fill_missing,
    moving_average_smooth,
    standardize,
)
from repro.series.validation import (
    validate_length_range,
    validate_series,
    validate_subsequence_length,
)
from repro.series.windows import (
    extract_subsequence,
    iter_subsequences,
    subsequence_count,
    subsequence_view,
)

__all__ = [
    "DataSeries",
    "as_series",
    "clip_outliers",
    "detrend",
    "downsample",
    "extract_subsequence",
    "fill_missing",
    "iter_subsequences",
    "load_csv",
    "load_npy",
    "load_text",
    "moving_average_smooth",
    "save_csv",
    "save_npy",
    "save_text",
    "standardize",
    "subsequence_count",
    "subsequence_view",
    "validate_length_range",
    "validate_series",
    "validate_subsequence_length",
]
