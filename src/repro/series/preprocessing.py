"""Preprocessing utilities for raw data series.

Real recordings (ECG, seismic, light curves) come with missing samples,
baseline drift and outliers.  VALMOD itself requires a clean, finite series;
these helpers put raw data into that shape and are exercised by the example
applications.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.series.dataseries import DataSeries

__all__ = [
    "fill_missing",
    "detrend",
    "standardize",
    "downsample",
    "moving_average_smooth",
    "clip_outliers",
]


def _to_array(series) -> tuple[np.ndarray, DataSeries | None]:
    """Return ``(values, original)`` where ``original`` is the DataSeries if given."""
    if isinstance(series, DataSeries):
        return np.array(series.values), series
    array = np.asarray(series, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise InvalidSeriesError(f"expected a non-empty 1-D series, got shape {array.shape}")
    return np.array(array), None


def _wrap(values: np.ndarray, original: DataSeries | None, suffix: str) -> DataSeries | np.ndarray:
    if original is None:
        return values
    return DataSeries(
        values,
        name=f"{original.name}:{suffix}",
        sampling_rate=original.sampling_rate,
        metadata=original.metadata,
    )


def fill_missing(series, *, method: str = "linear"):
    """Replace NaN values by interpolation.

    ``method`` is ``"linear"`` (default), ``"ffill"`` (previous valid value)
    or ``"mean"`` (series mean).  Leading/trailing NaNs are filled with the
    nearest valid value.  Unlike the other helpers, this one accepts NaNs in
    its input — that is its purpose.
    """
    if isinstance(series, DataSeries):
        raise InvalidSeriesError(
            "DataSeries instances are always finite; fill_missing operates on raw arrays"
        )
    values = np.asarray(series, dtype=np.float64).copy()
    if values.ndim != 1 or values.size == 0:
        raise InvalidSeriesError(f"expected a non-empty 1-D series, got shape {values.shape}")
    mask = np.isfinite(values)
    if mask.all():
        return values
    if not mask.any():
        raise InvalidSeriesError("the series contains no finite values to interpolate from")
    indices = np.arange(values.size)
    if method == "linear":
        values[~mask] = np.interp(indices[~mask], indices[mask], values[mask])
    elif method == "ffill":
        last = values[mask][0]
        for i in range(values.size):
            if mask[i]:
                last = values[i]
            else:
                values[i] = last
    elif method == "mean":
        values[~mask] = values[mask].mean()
    else:
        raise InvalidParameterError(f"unknown fill method {method!r}")
    return values


def detrend(series):
    """Remove the least-squares straight-line trend from the series."""
    values, original = _to_array(series)
    x = np.arange(values.size, dtype=np.float64)
    slope, intercept = np.polyfit(x, values, deg=1)
    detrended = values - (slope * x + intercept)
    return _wrap(detrended, original, "detrended")


def standardize(series):
    """Z-normalise the *whole* series (zero mean, unit variance)."""
    values, original = _to_array(series)
    std = values.std()
    if std == 0:
        standardized = np.zeros_like(values)
    else:
        standardized = (values - values.mean()) / std
    return _wrap(standardized, original, "standardized")


def downsample(series, factor: int):
    """Keep every ``factor``-th point (simple decimation)."""
    if factor < 1:
        raise InvalidParameterError(f"downsampling factor must be >= 1, got {factor}")
    values, original = _to_array(series)
    if values.size // factor < 2:
        raise InvalidParameterError(
            f"downsampling by {factor} would leave fewer than 2 points"
        )
    return _wrap(values[::factor].copy(), original, f"down{factor}")


def moving_average_smooth(series, window: int):
    """Centred moving-average smoothing with edge padding."""
    if window < 1:
        raise InvalidParameterError(f"smoothing window must be >= 1, got {window}")
    values, original = _to_array(series)
    if window == 1:
        return _wrap(values, original, "smoothed")
    if window > values.size:
        raise InvalidParameterError(
            f"smoothing window {window} exceeds series length {values.size}"
        )
    pad_left = window // 2
    pad_right = window - 1 - pad_left
    padded = np.pad(values, (pad_left, pad_right), mode="edge")
    kernel = np.full(window, 1.0 / window)
    smoothed = np.convolve(padded, kernel, mode="valid")
    return _wrap(smoothed, original, "smoothed")


def clip_outliers(series, *, n_sigmas: float = 5.0):
    """Clamp points further than ``n_sigmas`` standard deviations from the mean."""
    if n_sigmas <= 0:
        raise InvalidParameterError(f"n_sigmas must be positive, got {n_sigmas}")
    values, original = _to_array(series)
    mean = values.mean()
    std = values.std()
    if std == 0:
        return _wrap(values, original, "clipped")
    low = mean - n_sigmas * std
    high = mean + n_sigmas * std
    return _wrap(np.clip(values, low, high), original, "clipped")
