"""Evaluating discovered motifs against ground truth.

The synthetic generators embed patterns at known offsets; these helpers check
whether the motifs an algorithm reports actually cover those plants.  They
power the accuracy tests and the "did the variable-length search find the
full heartbeat?" style analyses of the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.exceptions import InvalidParameterError
from repro.generators.planted import PlantedMotif
from repro.matrix_profile.profile import MotifPair

__all__ = [
    "overlap_length",
    "MatchReport",
    "match_motifs_to_ground_truth",
    "recall_of_planted_motifs",
]


def overlap_length(start_a: int, length_a: int, start_b: int, length_b: int) -> int:
    """Number of points shared by the intervals ``[start, start+length)``."""
    if length_a < 0 or length_b < 0:
        raise InvalidParameterError("interval lengths must be >= 0")
    return max(0, min(start_a + length_a, start_b + length_b) - max(start_a, start_b))


@dataclass(frozen=True)
class MatchReport:
    """Outcome of matching one discovered pair against one planted motif.

    A pair *covers* a planted motif when each pair member overlaps a distinct
    planted copy by at least ``coverage`` (a fraction of the planted length).
    """

    pair: MotifPair
    planted: PlantedMotif
    covered: bool
    coverage_a: float
    coverage_b: float

    def as_dict(self) -> dict:
        """Plain-dict form for reports."""
        return {
            "pair": self.pair.as_dict(),
            "planted": self.planted.as_dict(),
            "covered": self.covered,
            "coverage_a": self.coverage_a,
            "coverage_b": self.coverage_b,
        }


def _best_coverage(pair_offset: int, pair_window: int, planted: PlantedMotif) -> tuple[int, float]:
    """Return ``(copy_index, coverage)`` of the planted copy best covered by one member."""
    best_index = -1
    best_coverage = 0.0
    for index, copy_offset in enumerate(planted.offsets):
        shared = overlap_length(pair_offset, pair_window, copy_offset, planted.length)
        coverage = shared / planted.length
        if coverage > best_coverage:
            best_coverage = coverage
            best_index = index
    return best_index, best_coverage


def match_motifs_to_ground_truth(
    pairs: Iterable[MotifPair],
    planted_motifs: Sequence[PlantedMotif],
    *,
    coverage: float = 0.5,
) -> List[MatchReport]:
    """Match every discovered pair against every planted motif.

    ``coverage`` is the minimum fraction of the planted pattern that each pair
    member must overlap (on distinct copies) for the pair to count as a find.
    """
    if not 0.0 < coverage <= 1.0:
        raise InvalidParameterError(f"coverage must be in (0, 1], got {coverage}")
    reports: List[MatchReport] = []
    for pair in pairs:
        for planted in planted_motifs:
            index_a, coverage_a = _best_coverage(pair.offset_a, pair.window, planted)
            index_b, coverage_b = _best_coverage(pair.offset_b, pair.window, planted)
            covered = (
                index_a >= 0
                and index_b >= 0
                and index_a != index_b
                and coverage_a >= coverage
                and coverage_b >= coverage
            )
            reports.append(
                MatchReport(
                    pair=pair,
                    planted=planted,
                    covered=covered,
                    coverage_a=coverage_a,
                    coverage_b=coverage_b,
                )
            )
    return reports


def recall_of_planted_motifs(
    pairs: Iterable[MotifPair],
    planted_motifs: Sequence[PlantedMotif],
    *,
    coverage: float = 0.5,
) -> float:
    """Fraction of planted motifs covered by at least one discovered pair."""
    planted_motifs = list(planted_motifs)
    if not planted_motifs:
        raise InvalidParameterError("planted_motifs must not be empty")
    reports = match_motifs_to_ground_truth(pairs, planted_motifs, coverage=coverage)
    found = {
        id(report.planted)
        for report in reports
        if report.covered
    }
    return len(found) / len(planted_motifs)
