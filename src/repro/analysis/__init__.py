"""Analysis front-end (the library counterpart of the demo's Python GUI).

The VALMOD demo exposes three interactions on top of the algorithm's output:
inspecting VALMAP checkpoints up to a chosen length (a slider in the GUI),
listing the top-k variable-length motifs, and expanding a motif pair into its
motif set.  This package provides those interactions programmatically plus
evaluation utilities (matching discovered motifs against ground truth) and
lightweight ASCII rendering so results can be inspected in a terminal without
any plotting dependency.
"""

from repro.analysis.annotation import (
    annotation_vector_clipping,
    annotation_vector_complexity,
    annotation_vector_forbidden,
    apply_annotation_vector,
    combine_annotation_vectors,
)
from repro.analysis.ascii_plot import render_profile, render_series, render_valmap
from repro.analysis.checkpoints import CheckpointSummary, summarize_checkpoints
from repro.analysis.evaluation import (
    MatchReport,
    match_motifs_to_ground_truth,
    overlap_length,
    recall_of_planted_motifs,
)
from repro.analysis.report import (
    format_motif_table,
    format_pruning_table,
    format_valmap_summary,
    result_report,
)

__all__ = [
    "CheckpointSummary",
    "MatchReport",
    "annotation_vector_clipping",
    "annotation_vector_complexity",
    "annotation_vector_forbidden",
    "apply_annotation_vector",
    "combine_annotation_vectors",
    "format_motif_table",
    "format_pruning_table",
    "format_valmap_summary",
    "match_motifs_to_ground_truth",
    "overlap_length",
    "recall_of_planted_motifs",
    "render_profile",
    "render_series",
    "render_valmap",
    "result_report",
    "summarize_checkpoints",
]
