"""Terminal-friendly rendering of series, profiles and VALMAP.

The original demo ships a graphical front-end; this library targets scripted
and head-less use, so the "plots" are compact ASCII sparklines good enough to
eyeball where the motifs and the VALMAP updates sit.  All functions return a
string (they never print), so the CLI, the examples and the tests can reuse
them.
"""

from __future__ import annotations

import numpy as np

from repro.core.valmap import Valmap
from repro.exceptions import InvalidParameterError

__all__ = ["render_series", "render_profile", "render_valmap"]

_LEVELS = " .:-=+*#%@"


def _downsample_to(values: np.ndarray, width: int) -> np.ndarray:
    """Reduce ``values`` to ``width`` points by block-averaging finite entries."""
    if values.size <= width:
        return np.array(values, dtype=np.float64)
    edges = np.linspace(0, values.size, width + 1).astype(int)
    output = np.empty(width, dtype=np.float64)
    for i in range(width):
        block = values[edges[i] : edges[i + 1]]
        finite = block[np.isfinite(block)]
        output[i] = finite.mean() if finite.size else np.nan
    return output


def _to_levels(values: np.ndarray) -> str:
    """Map values to the ASCII intensity scale (NaN becomes a space)."""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return " " * values.size
    low, high = float(finite.min()), float(finite.max())
    span = high - low
    characters = []
    for value in values:
        if not np.isfinite(value):
            characters.append(" ")
            continue
        if span == 0:
            characters.append(_LEVELS[len(_LEVELS) // 2])
            continue
        index = int(round((value - low) / span * (len(_LEVELS) - 1)))
        characters.append(_LEVELS[index])
    return "".join(characters)


def render_series(values, *, width: int = 80, label: str = "series") -> str:
    """One-line sparkline of a series (darker = larger value)."""
    if width < 8:
        raise InvalidParameterError(f"width must be >= 8, got {width}")
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise InvalidParameterError("expected a non-empty 1-D array")
    line = _to_levels(_downsample_to(array, width))
    return f"{label:>12} |{line}|"


def render_profile(distances, *, width: int = 80, label: str = "profile", mark_min: bool = True) -> str:
    """Sparkline of a (matrix or distance) profile, marking the minimum.

    The minimum is where the motif lives, so a caret is printed beneath it.
    """
    array = np.asarray(distances, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise InvalidParameterError("expected a non-empty 1-D array")
    line = render_series(array, width=width, label=label)
    if not mark_min or not np.isfinite(array).any():
        return line
    position = int(np.nanargmin(np.where(np.isfinite(array), array, np.nan)))
    column = int(position * min(width, array.size) / array.size)
    marker = " " * 14 + " " * column + "^"
    return f"{line}\n{marker}"


def render_valmap(valmap: Valmap, *, width: int = 80) -> str:
    """Three-line rendering of a VALMAP: MPn, length profile and update mask."""
    lines = [
        render_profile(valmap.normalized_profile, width=width, label="VALMAP MPn"),
        render_series(valmap.length_profile.astype(float), width=width, label="length prof"),
    ]
    updated = np.zeros(len(valmap), dtype=np.float64)
    updated[valmap.updated_positions()] = 1.0
    lines.append(render_series(updated, width=width, label="updated"))
    return "\n".join(lines)
