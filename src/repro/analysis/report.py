"""Textual reports of VALMOD results.

These formatters turn result objects into the fixed-width tables the CLI and
the examples print — motif rankings, per-length pruning statistics and a
VALMAP summary.  They deliberately avoid any third-party table library.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.checkpoints import summarize_checkpoints
from repro.core.results import PruningStats, ValmodResult
from repro.matrix_profile.profile import MotifPair

__all__ = [
    "format_motif_table",
    "format_pruning_table",
    "format_pruning_power",
    "format_valmap_summary",
    "result_report",
]


def _format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Minimal fixed-width table formatter."""
    rows = [list(row) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    separator = "  ".join("-" * width for width in widths)
    lines = [fmt(headers), separator]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_motif_table(pairs: Iterable[MotifPair], *, title: str = "motif pairs") -> str:
    """Table of motif pairs: rank, length, offsets, raw and normalised distance."""
    rows = [
        [
            str(rank),
            str(pair.window),
            str(pair.offset_a),
            str(pair.offset_b),
            f"{pair.distance:.4f}",
            f"{pair.normalized_distance:.4f}",
        ]
        for rank, pair in enumerate(pairs, start=1)
    ]
    table = _format_table(
        ["rank", "length", "offset A", "offset B", "distance", "norm. distance"], rows
    )
    return f"{title}\n{table}"


def format_pruning_table(stats: Iterable[PruningStats], *, title: str = "pruning per length") -> str:
    """Table of the per-length pruning counters (Figure 2 data)."""
    rows = [
        [
            str(stat.length),
            str(stat.num_profiles),
            str(stat.num_valid),
            str(stat.num_non_valid),
            str(stat.num_recomputed),
            f"{stat.valid_fraction:.3f}",
        ]
        for stat in stats
    ]
    table = _format_table(
        ["length", "profiles", "valid", "non-valid", "recomputed", "valid frac"], rows
    )
    return f"{title}\n{table}"


def format_valmap_summary(result: ValmodResult) -> str:
    """Summary of the VALMAP structure: best entry, updated regions, checkpoints."""
    valmap = result.valmap
    offset, length, match, normalized = valmap.best_entry()
    summary = summarize_checkpoints(valmap)
    lines = [
        "VALMAP summary",
        f"  positions            : {len(valmap)}",
        f"  length range         : [{valmap.min_length}, {valmap.max_length}]",
        f"  best entry           : offset {offset}, length {length}, match {match}, "
        f"normalized distance {normalized:.4f}",
        f"  updated positions    : {len(valmap.updated_positions())}",
        f"  update events        : {summary.num_updates}",
        f"  contiguous regions   : {len(summary.update_regions)}",
    ]
    if summary.update_regions:
        preview = ", ".join(f"[{start}, {stop})" for start, stop in summary.update_regions[:5])
        lines.append(f"  first regions        : {preview}")
    return "\n".join(lines)


def result_report(result: ValmodResult, *, top_k: int = 5) -> str:
    """Complete textual report of a VALMOD run (used by the CLI and examples)."""
    sections = [
        f"VALMOD on {result.series_name!r} "
        f"({result.series_length} points, lengths "
        f"[{result.config.min_length}, {result.config.max_length}])",
        f"elapsed: {result.elapsed_seconds:.3f} s",
        "",
        format_motif_table(
            result.top_motifs(top_k), title=f"top-{top_k} variable-length motif pairs"
        ),
        "",
        format_pruning_table(
            [result.length_results[length].pruning for length in result.lengths],
            title="pruning per length",
        ),
        format_pruning_power(
            [result.length_results[length].pruning for length in result.lengths]
        ),
        "",
        format_valmap_summary(result),
    ]
    return "\n".join(sections)


def format_pruning_power(stats: Sequence[PruningStats]) -> str:
    """One-line overall pruning power (the paper's Section 6 headline
    number): the fraction of per-length profiles the lower bound kept
    valid, i.e. that never needed recomputation.  The same value is
    published live as the ``valmod.pruning_power.overall`` gauge
    (per-length: ``valmod.pruning_power.len<L>``) — ``repro metrics``
    reads it without re-running anything."""
    total = sum(stat.num_profiles for stat in stats)
    valid = sum(stat.num_valid for stat in stats)
    overall = 1.0 if total == 0 else valid / total
    return (
        f"pruning power: {overall:.3f} "
        f"({valid}/{total} profiles valid across {len(list(stats))} lengths)"
    )
