"""Annotation vectors — guiding motif discovery away from nuisance matches.

On real recordings the mathematically best motif pair is sometimes a nuisance
artefact: a flat stretch of dropout, a clipped region, or a segment the
analyst already knows about.  The *annotation vector* technique (introduced
with "guided motif search" in the matrix-profile literature) lets the analyst
express such domain knowledge as a vector ``AV`` of values in ``[0, 1]`` (one
per subsequence, 1 = interesting, 0 = forbidden) and biases the matrix
profile accordingly::

    CMP[i] = MP[i] + (1 - AV[i]) * max(MP)

The *corrected matrix profile* ``CMP`` leaves interesting regions untouched
and pushes annotated-away regions to the top of the profile, so the usual
motif extraction (global minima) now returns the best *admissible* pair.

The module provides the correction itself plus the annotation vectors that
cover the common nuisance cases on the library's workloads: complexity-based
(flat/dropout regions), amplitude-clipping, and explicit forbidden windows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.profile import MatrixProfile
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.sliding import SlidingStats

__all__ = [
    "annotation_vector_complexity",
    "annotation_vector_clipping",
    "annotation_vector_forbidden",
    "combine_annotation_vectors",
    "apply_annotation_vector",
]


def _validate_vector(annotation: np.ndarray, count: int) -> np.ndarray:
    vector = np.asarray(annotation, dtype=np.float64)
    if vector.ndim != 1 or vector.size != count:
        raise InvalidParameterError(
            f"the annotation vector must be 1-D with {count} entries, got shape {vector.shape}"
        )
    if np.any(vector < 0.0) or np.any(vector > 1.0) or not np.all(np.isfinite(vector)):
        raise InvalidParameterError("annotation values must be finite and lie in [0, 1]")
    return vector


def annotation_vector_complexity(series, window: int) -> np.ndarray:
    """Annotation favouring *complex* subsequences over flat / dropout regions.

    The per-subsequence complexity estimate is the root of the summed squared
    first differences of the z-normalised subsequence (the classic
    complexity-invariance measure); the vector is that estimate rescaled to
    ``[0, 1]``.  Flat stretches — which otherwise produce spurious
    zero-distance motifs — receive annotation 0.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    count = values.size - window + 1
    stats = SlidingStats(values)
    means, stds = stats.mean_std(window)

    differences = np.diff(values)
    squared = np.concatenate(([0.0], np.cumsum(np.square(differences))))
    # Sum of squared differences inside each window (window-1 differences).
    window_energy = squared[window - 1 :] - squared[: count]
    safe_stds = np.where(stds <= 0.0, np.inf, stds)
    complexity = np.sqrt(window_energy) / safe_stds
    complexity[~np.isfinite(complexity)] = 0.0
    top = complexity.max()
    if top <= 0.0:
        return np.zeros(count, dtype=np.float64)
    return complexity / top


def annotation_vector_clipping(series, window: int, *, saturation_fraction: float = 0.02) -> np.ndarray:
    """Annotation that down-weights subsequences touching the sensor limits.

    A point is considered saturated when it lies within ``saturation_fraction``
    of the series' global minimum or maximum; a subsequence's annotation is the
    fraction of its points that are *not* saturated.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    if not 0.0 < saturation_fraction < 0.5:
        raise InvalidParameterError(
            f"saturation_fraction must be in (0, 0.5), got {saturation_fraction}"
        )
    count = values.size - window + 1
    low, high = float(values.min()), float(values.max())
    span = max(high - low, 1e-12)
    saturated = (
        (values <= low + saturation_fraction * span)
        | (values >= high - saturation_fraction * span)
    ).astype(np.float64)
    cumulative = np.concatenate(([0.0], np.cumsum(saturated)))
    saturated_per_window = cumulative[window:] - cumulative[:count]
    return 1.0 - saturated_per_window / window


def annotation_vector_forbidden(
    count: int, forbidden: Iterable[tuple[int, int]]
) -> np.ndarray:
    """Annotation that forbids explicit ``[start, stop)`` offset ranges.

    ``count`` is the number of subsequences (profile entries); every offset
    covered by one of the ranges gets annotation 0, everything else 1.
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    vector = np.ones(count, dtype=np.float64)
    for start, stop in forbidden:
        if stop <= start:
            raise InvalidParameterError(
                f"forbidden range [{start}, {stop}) is empty or reversed"
            )
        vector[max(0, int(start)) : min(count, int(stop))] = 0.0
    return vector


def combine_annotation_vectors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Combine several annotation vectors (element-wise product).

    The product is the natural conjunction: a subsequence is interesting only
    if every annotation considers it interesting.
    """
    if not vectors:
        raise InvalidParameterError("at least one annotation vector is required")
    combined = np.asarray(vectors[0], dtype=np.float64).copy()
    for vector in vectors[1:]:
        other = np.asarray(vector, dtype=np.float64)
        if other.shape != combined.shape:
            raise InvalidParameterError(
                "all annotation vectors must have the same length"
            )
        combined *= other
    return np.clip(combined, 0.0, 1.0)


def apply_annotation_vector(profile: MatrixProfile, annotation: np.ndarray) -> MatrixProfile:
    """Return the corrected matrix profile ``CMP = MP + (1 - AV) · max(MP)``.

    The returned object keeps the original best-match indices (the correction
    re-ranks positions, it does not change who each position's nearest
    neighbour is), so the usual ``motifs()`` / ``discords()`` extraction works
    unchanged on it — now honouring the annotation.
    """
    vector = _validate_vector(annotation, len(profile))
    distances = np.array(profile.distances, dtype=np.float64)
    finite = np.isfinite(distances)
    if not finite.any():
        return profile
    ceiling = float(distances[finite].max())
    corrected = np.where(
        finite, distances + (1.0 - vector) * ceiling, distances
    )
    return MatrixProfile(
        distances=corrected,
        indices=np.array(profile.indices),
        window=profile.window,
        exclusion_radius=profile.exclusion_radius,
    )
