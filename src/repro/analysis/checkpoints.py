"""VALMAP checkpoint analysis (the demo's slider view).

The demo lets the user pick a length with a slider and shows every VALMAP
update that happened between ``l_min`` and that length — highlighting the
regions of the series where longer patterns keep improving on shorter ones
(the ECG example of Figure 1 right, where a run of contiguous updates reveals
the full heartbeat).  This module condenses the raw checkpoint log into that
kind of summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.valmap import Valmap, ValmapCheckpoint
from repro.exceptions import InvalidParameterError

__all__ = ["CheckpointSummary", "summarize_checkpoints"]


@dataclass(frozen=True)
class CheckpointSummary:
    """Aggregate view of the VALMAP updates up to a chosen length.

    Attributes
    ----------
    up_to_length:
        The slider value the summary refers to.
    num_updates:
        Total number of update events with ``length <= up_to_length``.
    updated_offsets:
        Sorted offsets whose entry improved at least once.
    update_regions:
        Maximal runs ``(start, stop)`` of contiguous updated offsets — the
        "sequences of contiguous updates" the paper points at in Figure 1(f).
    updates_per_length:
        Mapping ``length -> number of updates recorded at that length``.
    """

    up_to_length: int
    num_updates: int
    updated_offsets: List[int]
    update_regions: List[tuple[int, int]]
    updates_per_length: dict[int, int]

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "up_to_length": self.up_to_length,
            "num_updates": self.num_updates,
            "updated_offsets": list(self.updated_offsets),
            "update_regions": [list(region) for region in self.update_regions],
            "updates_per_length": dict(self.updates_per_length),
        }


def _contiguous_regions(offsets: np.ndarray, max_gap: int = 1) -> List[tuple[int, int]]:
    """Group sorted offsets into maximal runs with gaps of at most ``max_gap``."""
    if offsets.size == 0:
        return []
    regions: List[tuple[int, int]] = []
    start = int(offsets[0])
    previous = int(offsets[0])
    for offset in offsets[1:].tolist():
        if offset - previous > max_gap:
            regions.append((start, previous + 1))
            start = offset
        previous = offset
    regions.append((start, previous + 1))
    return regions


def summarize_checkpoints(
    valmap: Valmap, up_to_length: int | None = None, *, region_gap: int = 1
) -> CheckpointSummary:
    """Summarise the VALMAP update log up to ``up_to_length`` (defaults to the max).

    ``region_gap`` controls how close two updated offsets must be to belong to
    the same region (1 = strictly contiguous).
    """
    if up_to_length is None:
        up_to_length = valmap.max_length
    if up_to_length < valmap.min_length:
        raise InvalidParameterError(
            f"up_to_length {up_to_length} is below the VALMAP base length "
            f"{valmap.min_length}"
        )
    if region_gap < 1:
        raise InvalidParameterError(f"region_gap must be >= 1, got {region_gap}")

    checkpoints: List[ValmapCheckpoint] = valmap.checkpoints_up_to(up_to_length)
    offsets = np.unique(np.array([cp.offset for cp in checkpoints], dtype=np.int64))
    per_length: dict[int, int] = {}
    for checkpoint in checkpoints:
        per_length[checkpoint.length] = per_length.get(checkpoint.length, 0) + 1

    return CheckpointSummary(
        up_to_length=int(up_to_length),
        num_updates=len(checkpoints),
        updated_offsets=offsets.tolist(),
        update_regions=_contiguous_regions(offsets, max_gap=region_gap),
        updates_per_length=dict(sorted(per_length.items())),
    )
