"""Result objects of a VALMOD run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

import numpy as np

from repro.core.config import ValmodConfig
from repro.core.ranking import rank_motif_pairs
from repro.core.valmap import Valmap
from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.profile import MatrixProfile, MotifPair

__all__ = ["LengthResult", "PruningStats", "ValmodResult"]


@dataclass(frozen=True)
class PruningStats:
    """Pruning counters for one subsequence length (the data behind Figure 2).

    Attributes
    ----------
    num_profiles:
        Number of partial distance profiles evaluated at this length.
    num_valid:
        Profiles whose retained minimum was provably the true minimum
        (``minDist <= maxLB``).
    num_non_valid:
        Profiles where the retained entries could not certify the minimum.
    num_recomputed:
        Non-valid profiles whose full distance profile had to be recomputed
        exactly (with MASS) to certify the top-k motifs.
    min_lb_abs:
        The paper's ``minLBAbs`` — smallest ``maxLB`` among non-valid profiles.
    """

    length: int
    num_profiles: int
    num_valid: int
    num_non_valid: int
    num_recomputed: int
    min_lb_abs: float

    @property
    def valid_fraction(self) -> float:
        """Fraction of profiles certified without any recomputation."""
        if self.num_profiles == 0:
            return 1.0
        return self.num_valid / self.num_profiles

    @property
    def recomputed_fraction(self) -> float:
        """Fraction of profiles that needed an exact recomputation."""
        if self.num_profiles == 0:
            return 0.0
        return self.num_recomputed / self.num_profiles

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "length": self.length,
            "num_profiles": self.num_profiles,
            "num_valid": self.num_valid,
            "num_non_valid": self.num_non_valid,
            "num_recomputed": self.num_recomputed,
            "min_lb_abs": self.min_lb_abs,
            "valid_fraction": self.valid_fraction,
            "recomputed_fraction": self.recomputed_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PruningStats":
        """Rebuild the counters from :meth:`as_dict` output (the derived
        fractions are recomputed, not trusted)."""
        return cls(
            length=int(payload["length"]),
            num_profiles=int(payload["num_profiles"]),
            num_valid=int(payload["num_valid"]),
            num_non_valid=int(payload["num_non_valid"]),
            num_recomputed=int(payload["num_recomputed"]),
            min_lb_abs=float(payload["min_lb_abs"]),
        )


@dataclass(frozen=True)
class LengthResult:
    """Top-k motif pairs and pruning statistics for one subsequence length."""

    length: int
    motifs: List[MotifPair]
    pruning: PruningStats

    @property
    def best(self) -> MotifPair:
        """The best motif pair of this length."""
        if not self.motifs:
            raise EmptyResultError(f"no motif pair was found at length {self.length}")
        return self.motifs[0]

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "length": self.length,
            "motifs": [pair.as_dict() for pair in self.motifs],
            "pruning": self.pruning.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "LengthResult":
        """Rebuild one per-length result from :meth:`as_dict` output."""
        return cls(
            length=int(payload["length"]),
            motifs=[
                MotifPair(
                    distance=float(pair["distance"]),
                    offset_a=int(pair["offset_a"]),
                    offset_b=int(pair["offset_b"]),
                    window=int(pair["window"]),
                )
                for pair in payload["motifs"]
            ],
            pruning=PruningStats.from_dict(payload["pruning"]),
        )


@dataclass(frozen=True)
class ValmodResult:
    """Everything a VALMOD run produces.

    Attributes
    ----------
    config:
        The configuration the run used.
    series_name:
        Name of the analysed series (for reports).
    series_length:
        Number of points of the analysed series.
    base_profile:
        The exact matrix profile at ``min_length`` (the starting point of the
        algorithm and of VALMAP).
    length_results:
        One :class:`LengthResult` per evaluated length, keyed by length.
    valmap:
        The VALMAP structure with its checkpoints.
    elapsed_seconds:
        Wall-clock duration of the run (used by the benchmark harness).
    """

    config: ValmodConfig
    series_name: str
    series_length: int
    base_profile: MatrixProfile
    length_results: Mapping[int, LengthResult]
    valmap: Valmap
    elapsed_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # access helpers
    # ------------------------------------------------------------------ #
    @property
    def lengths(self) -> List[int]:
        """Evaluated lengths, ascending."""
        return sorted(self.length_results)

    def motifs_at(self, length: int) -> List[MotifPair]:
        """The top-k motif pairs found at one specific length."""
        if length not in self.length_results:
            raise InvalidParameterError(
                f"length {length} was not evaluated; available: {self.lengths}"
            )
        return list(self.length_results[length].motifs)

    def all_motifs(self) -> List[MotifPair]:
        """Every reported motif pair, across all lengths (unsorted)."""
        pairs: List[MotifPair] = []
        for length in self.lengths:
            pairs.extend(self.length_results[length].motifs)
        return pairs

    def top_motifs(
        self,
        k: int = 10,
        *,
        distinct_events: bool = True,
        overlap_fraction: float = 0.5,
    ) -> List[MotifPair]:
        """Variable-length top-k ranking by length-normalised distance."""
        return rank_motif_pairs(
            self.all_motifs(),
            k,
            distinct_events=distinct_events,
            overlap_fraction=overlap_fraction,
        )

    def best_motif(self) -> MotifPair:
        """The single best variable-length motif pair (smallest ``d_n``)."""
        ranked = self.top_motifs(1, distinct_events=False)
        if not ranked:
            raise EmptyResultError("the run produced no motif pair at any length")
        return ranked[0]

    # ------------------------------------------------------------------ #
    # aggregate statistics
    # ------------------------------------------------------------------ #
    def pruning_summary(self) -> Dict[str, float]:
        """Aggregate pruning counters over all lengths above the base length."""
        stats = [
            result.pruning
            for length, result in self.length_results.items()
            if length > self.config.min_length
        ]
        if not stats:
            return {
                "lengths_evaluated": 0.0,
                "profiles_evaluated": 0.0,
                "valid_fraction": 1.0,
                "recomputed_fraction": 0.0,
            }
        profiles = sum(s.num_profiles for s in stats)
        valid = sum(s.num_valid for s in stats)
        recomputed = sum(s.num_recomputed for s in stats)
        return {
            "lengths_evaluated": float(len(stats)),
            "profiles_evaluated": float(profiles),
            "valid_fraction": valid / profiles if profiles else 1.0,
            "recomputed_fraction": recomputed / profiles if profiles else 0.0,
        }

    def normalized_profile_matrix(self) -> np.ndarray:
        """Convenience view of the VALMAP normalised profile (for plotting)."""
        return np.array(self.valmap.normalized_profile)

    def as_dict(self) -> dict:
        """Plain-dict form used by the report generator and serialization.

        Carries everything :meth:`from_dict` needs to rebuild the *full*
        in-process result — including the base profile, which the report
        generator ignores but the lossless persistent-cache rehydration
        depends on.
        """
        return {
            "config": self.config.as_dict(),
            "series_name": self.series_name,
            "series_length": self.series_length,
            "elapsed_seconds": self.elapsed_seconds,
            "lengths": self.lengths,
            "base_profile": self.base_profile.as_dict(),
            "length_results": {
                str(length): result.as_dict()
                for length, result in sorted(self.length_results.items())
            },
            "valmap": self.valmap.as_dict(),
            "pruning_summary": self.pruning_summary(),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ValmodResult":
        """Rebuild the full in-process result from :meth:`as_dict` output.

        The inverse the persistent result cache uses to rehydrate spilled
        VALMOD hits losslessly (valmap, checkpoints, pruning detail and the
        base profile all round-trip).  Raises ``KeyError`` / ``TypeError``
        / ``ValueError`` on malformed input — callers needing miss-style
        degradation translate those.
        """
        base = payload["base_profile"]
        return cls(
            config=ValmodConfig.from_dict(payload["config"]),
            series_name=str(payload["series_name"]),
            series_length=int(payload["series_length"]),
            base_profile=MatrixProfile(
                distances=np.asarray(base["distances"], dtype=np.float64),
                indices=np.asarray(base["indices"], dtype=np.int64),
                window=int(base["window"]),
                exclusion_radius=int(base["exclusion_radius"]),
            ),
            length_results={
                int(length): LengthResult.from_dict(result)
                for length, result in payload["length_results"].items()
            },
            valmap=Valmap.from_dict(payload["valmap"]),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            extra={
                str(key): value for key, value in payload.get("extra", {}).items()
            },
        )
