"""Variable-length discord discovery (extension).

The journal version of VALMOD extends the framework to *discords* — the
subsequences whose nearest neighbour is furthest away, i.e. the anomalies.
The demo paper does not evaluate discords, so this module provides a
straightforward exact implementation built on the fixed-length matrix
profile: every length of the (optionally strided) range is processed with
STOMP and the discords of different lengths are compared through the same
length-normalised distance used for motifs (larger is more anomalous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.stomp import stomp
from repro.series.validation import validate_length_range, validate_series
from repro.stats.distance import length_normalized
from repro.stats.sliding import SlidingStats

__all__ = ["VariableLengthDiscord", "variable_length_discords"]


@dataclass(frozen=True, order=True)
class VariableLengthDiscord:
    """A discord candidate: offset, length and its nearest-neighbour distance.

    Ordering is by *descending* anomaly strength when sorted with
    ``reverse=True`` on ``normalized_distance``.
    """

    normalized_distance: float
    offset: int
    window: int
    distance: float
    nearest_neighbor: int

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "offset": self.offset,
            "window": self.window,
            "distance": self.distance,
            "normalized_distance": self.normalized_distance,
            "nearest_neighbor": self.nearest_neighbor,
        }


def variable_length_discords(
    series,
    min_length: int,
    max_length: int,
    *,
    k: int = 3,
    length_step: int | None = None,
    exclusion_factor: int = 4,
    stats: SlidingStats | None = None,
) -> List[VariableLengthDiscord]:
    """Top-k discords across a range of subsequence lengths.

    Parameters
    ----------
    k:
        Number of discords returned (ranked by length-normalised
        nearest-neighbour distance, largest first).
    length_step:
        Stride over the length range; defaults to roughly 16 evaluated
        lengths, which keeps the exact computation affordable.
    """
    values = validate_series(series)
    min_length, max_length = validate_length_range(values.size, min_length, max_length)
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if length_step is None:
        length_step = max(1, (max_length - min_length) // 16)
    if length_step < 1:
        raise InvalidParameterError(f"length_step must be >= 1, got {length_step}")

    lengths = list(range(min_length, max_length + 1, length_step))
    if lengths[-1] != max_length:
        lengths.append(max_length)

    if stats is None:
        stats = SlidingStats(values)
    candidates: List[VariableLengthDiscord] = []
    for length in lengths:
        profile = stomp(values, length, stats=stats)
        for offset in profile.discords(k):
            distance = float(profile.distances[offset])
            candidates.append(
                VariableLengthDiscord(
                    normalized_distance=float(length_normalized(distance, length)),
                    offset=offset,
                    window=length,
                    distance=distance,
                    nearest_neighbor=int(profile.indices[offset]),
                )
            )
        stats.forget(length)

    candidates.sort(key=lambda discord: discord.normalized_distance, reverse=True)
    # Keep at most one discord per distinct region: two candidates whose
    # offsets are within half the shorter window of each other describe the
    # same anomaly at different resolutions.
    selected: List[VariableLengthDiscord] = []
    for candidate in candidates:
        if any(
            abs(candidate.offset - chosen.offset) <= min(candidate.window, chosen.window) // 2
            for chosen in selected
        ):
            continue
        selected.append(candidate)
        if len(selected) == k:
            break
    return selected
