"""Configuration of a VALMOD run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lower_bound import LOWER_BOUND_KINDS
from repro.exceptions import InvalidParameterError, LengthRangeError

__all__ = ["ValmodConfig", "DEFAULT_PROFILE_CAPACITY", "DEFAULT_TOP_K"]

#: Default number of entries retained per partial distance profile (the
#: paper's ``p``).  Small values keep memory proportional to ``p·n`` while
#: still pruning the vast majority of recomputations.
DEFAULT_PROFILE_CAPACITY = 16

#: Default number of motif pairs reported per subsequence length.
DEFAULT_TOP_K = 3


@dataclass(frozen=True)
class ValmodConfig:
    """All tunables of the VALMOD algorithm.

    Attributes
    ----------
    min_length, max_length:
        The inclusive subsequence-length range ``[l_min, l_max]``.
    top_k:
        Number of motif pairs reported per length (the paper's top-k motif
        pairs); the variable-length ranking draws from these.
    profile_capacity:
        The paper's ``p``: how many entries of each base distance profile are
        carried to larger lengths.  Larger values prune more recomputations
        at the cost of memory and per-length update work.
    exclusion_factor:
        Trivial-match radius denominator: at length ``L`` the radius is
        ``ceil(L / exclusion_factor)``.
    lower_bound_kind:
        ``"tight"`` (default) or ``"paper"`` — see
        :mod:`repro.core.lower_bound`.
    length_step:
        Evaluate only every ``length_step``-th length of the range (1 = every
        length, the paper's setting).
    track_checkpoints:
        Record every VALMAP update event (needed by the checkpoint/slider
        analysis of the demo; costs memory proportional to the number of
        updates).
    update_both_members:
        When updating VALMAP from a motif pair, update the entries of both
        members (default) instead of only the left one as in the paper's
        formal definition.
    """

    min_length: int
    max_length: int
    top_k: int = DEFAULT_TOP_K
    profile_capacity: int = DEFAULT_PROFILE_CAPACITY
    exclusion_factor: int = 4
    lower_bound_kind: str = "tight"
    length_step: int = 1
    track_checkpoints: bool = True
    update_both_members: bool = True

    def __post_init__(self) -> None:
        if self.min_length < 3:
            raise LengthRangeError(self.min_length, self.max_length, "min_length must be >= 3")
        if self.max_length < self.min_length:
            raise LengthRangeError(
                self.min_length, self.max_length, "max_length must be >= min_length"
            )
        if self.top_k < 1:
            raise InvalidParameterError(f"top_k must be >= 1, got {self.top_k}")
        if self.profile_capacity < 1:
            raise InvalidParameterError(
                f"profile_capacity must be >= 1, got {self.profile_capacity}"
            )
        if self.exclusion_factor < 1:
            raise InvalidParameterError(
                f"exclusion_factor must be >= 1, got {self.exclusion_factor}"
            )
        if self.lower_bound_kind not in LOWER_BOUND_KINDS:
            raise InvalidParameterError(
                f"lower_bound_kind must be one of {LOWER_BOUND_KINDS}, "
                f"got {self.lower_bound_kind!r}"
            )
        if self.length_step < 1:
            raise InvalidParameterError(f"length_step must be >= 1, got {self.length_step}")

    @property
    def lengths(self) -> list[int]:
        """The lengths that will be evaluated, smallest first.

        ``max_length`` is always included even when the step does not land on
        it exactly, so the requested range is fully covered.
        """
        values = list(range(self.min_length, self.max_length + 1, self.length_step))
        if values[-1] != self.max_length:
            values.append(self.max_length)
        return values

    @property
    def range_width(self) -> int:
        """Width of the length range (the x-axis of Figure 3, top)."""
        return self.max_length - self.min_length + 1

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "min_length": self.min_length,
            "max_length": self.max_length,
            "top_k": self.top_k,
            "profile_capacity": self.profile_capacity,
            "exclusion_factor": self.exclusion_factor,
            "lower_bound_kind": self.lower_bound_kind,
            "length_step": self.length_step,
            "track_checkpoints": self.track_checkpoints,
            "update_both_members": self.update_both_members,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ValmodConfig":
        """Rebuild a config from :meth:`as_dict` output (validation re-runs)."""
        return cls(
            min_length=int(payload["min_length"]),
            max_length=int(payload["max_length"]),
            top_k=int(payload.get("top_k", DEFAULT_TOP_K)),
            profile_capacity=int(
                payload.get("profile_capacity", DEFAULT_PROFILE_CAPACITY)
            ),
            exclusion_factor=int(payload.get("exclusion_factor", 4)),
            lower_bound_kind=str(payload.get("lower_bound_kind", "tight")),
            length_step=int(payload.get("length_step", 1)),
            track_checkpoints=bool(payload.get("track_checkpoints", True)),
            update_both_members=bool(payload.get("update_both_members", True)),
        )
