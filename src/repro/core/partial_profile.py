"""Partial distance profiles — the memory VALMOD carries across lengths.

While STOMP computes the base-length (``l_min``) matrix profile, VALMOD keeps,
for every query offset ``i``, the ``p`` distance-profile entries with the
smallest lower bound — equivalently the ``p`` neighbours with the *largest*
base-length correlation, since the lower bound is a decreasing function of
that correlation and its ranking never changes with the target length (see
:mod:`repro.core.lower_bound`).

For each retained entry the store keeps the neighbour offset, the
**mean-centered** dot product ``QT`` (updated incrementally as the length
grows) and the base correlation.  All entries of all profiles live in flat
``(n_profiles, p)`` arrays so the per-length update of the whole store is a
handful of vectorised numpy operations instead of a Python loop over
profiles.

Centering
---------
Z-normalised distances are invariant under a global shift of the series, but
dot products are not: on a series sitting at offset ``1e6`` a raw product
carries rounding error at magnitude ``~eps·|T|²`` that survives the
``qt → correlation`` cancellation at full size, which used to leave VALMOD's
reported distances with ~1e-3 relative error while every other path in the
library was already centered.  The store therefore runs end-to-end on
:attr:`~repro.stats.sliding.SlidingStats.centered_values`: ingested products
must be taken on the centered series (exactly what the centered STOMP sweep
carries), :meth:`advance_to` appends centered tail products, and
:meth:`evaluate` converts with the centered window means.  The identity
``QT_c − L·μ̃_i·μ̃_j = QT − L·μ_i·μ_j`` (``μ̃ = μ − center``) makes this an
exact reformulation — only the rounding error changes.

Fragments and merging
---------------------
:meth:`PartialProfileStore.split` carves out a *fragment* covering a
contiguous row range; fragments ingest their rows independently (each engine
block builds its own) and :meth:`PartialProfileStore.merge` copies them back.
Because every row's retained entries are a function of that row's base
profile alone, merging disjoint fragments reproduces the serially-ingested
store bit for bit.  :meth:`export_state` yields a compact picklable form so
process-pool workers ship only their rows, not the series.

Terminology (Figure 2 of the paper):

* a partial profile is **valid** at length ``L`` when its smallest true
  distance among the retained entries (``minDist``) does not exceed the
  largest lower bound of the entries it did *not* retain (``maxLB``): the
  retained minimum is then provably the minimum of the whole profile;
* otherwise it is **non-valid** and ``maxLB`` acts as a lower bound on the
  true minimum, which VALMOD uses to decide whether the profile ever needs to
  be recomputed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.lower_bound import lower_bound
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.stats.distance import centered_dot_products, compensation_needed
from repro.stats.sliding import SlidingStats
from repro.stats.znorm import STD_EPSILON

__all__ = ["PartialProfileStore", "LengthEvaluation"]

#: Array fields of one fragment's exported state, in a fixed order so the
#: export/merge round-trip cannot silently drop a field.
_STATE_FIELDS = (
    "neighbors",
    "dot_products",
    "base_correlations",
    "pruned_correlation_ceiling",
    "complete",
    "unbounded",
    "populated",
)


@dataclass(frozen=True)
class LengthEvaluation:
    """The outcome of evaluating every partial profile at one length.

    Attributes
    ----------
    length:
        The subsequence length the evaluation refers to.
    min_distances:
        Per-offset minimum true distance among the retained entries
        (``inf`` when no retained entry is applicable at this length).
    min_indices:
        Offset of the neighbour achieving that minimum (``-1`` when none).
    max_lower_bounds:
        Per-offset ``maxLB`` threshold (``inf`` when the profile is complete,
        ``0`` when pruning had to be disabled for that offset).
    valid:
        Boolean mask: ``minDist <= maxLB`` (the retained minimum is exact).
    """

    length: int
    min_distances: np.ndarray
    min_indices: np.ndarray
    max_lower_bounds: np.ndarray
    valid: np.ndarray

    @property
    def num_valid(self) -> int:
        """Number of valid (fully pruned) partial profiles."""
        return int(np.count_nonzero(self.valid))

    @property
    def num_non_valid(self) -> int:
        """Number of non-valid partial profiles (candidates for recomputation)."""
        return int(self.valid.size - self.num_valid)

    @property
    def min_lb_abs(self) -> float:
        """The paper's ``minLBAbs``: smallest ``maxLB`` among non-valid profiles."""
        non_valid = ~self.valid
        if not non_valid.any():
            return float("inf")
        return float(self.max_lower_bounds[non_valid].min())


class PartialProfileStore:
    """Retained distance-profile entries for every query offset.

    Parameters
    ----------
    series_values:
        The raw data series (validated float64 array).  Stored centered —
        see the module docstring.
    stats:
        Precomputed sliding statistics of the series.
    base_length:
        The base subsequence length ``l_min``.
    capacity:
        The paper's ``p``: entries retained per profile.
    exclusion_factor:
        Denominator of the trivial-match radius.
    lower_bound_kind:
        ``"tight"`` or ``"paper"`` (see :mod:`repro.core.lower_bound`).
    """

    def __init__(
        self,
        series_values: np.ndarray,
        stats: SlidingStats,
        base_length: int,
        capacity: int,
        *,
        exclusion_factor: int = 4,
        lower_bound_kind: str = "tight",
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        values = np.asarray(series_values, dtype=np.float64)
        base_means, base_stds = stats.centered_mean_std(int(base_length))
        self._init_core(
            centered_values=stats.centered_values,
            base_means=base_means,
            base_stds=base_stds,
            base_length=int(base_length),
            capacity=int(capacity),
            exclusion_factor=int(exclusion_factor),
            lower_bound_kind=lower_bound_kind,
            row_range=(0, values.size - int(base_length) + 1),
        )
        self._stats: SlidingStats | None = stats

    @classmethod
    def fragment(
        cls,
        centered_values: np.ndarray,
        base_means: np.ndarray,
        base_stds: np.ndarray,
        base_length: int,
        capacity: int,
        *,
        exclusion_factor: int = 4,
        lower_bound_kind: str = "tight",
        row_range: tuple[int, int],
    ) -> "PartialProfileStore":
        """A store fragment built from precomputed centered inputs.

        This is the worker-side constructor: an engine block already holds
        the centered series and the centered base means/stds (they travel
        with the block payload), so the fragment needs no
        :class:`~repro.stats.sliding.SlidingStats`.  Fragments can ingest
        and :meth:`export_state` but not :meth:`evaluate` — merge them into
        a full store first.
        """
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        store = cls.__new__(cls)
        store._init_core(
            centered_values=np.asarray(centered_values, dtype=np.float64),
            base_means=np.asarray(base_means, dtype=np.float64),
            base_stds=np.asarray(base_stds, dtype=np.float64),
            base_length=int(base_length),
            capacity=int(capacity),
            exclusion_factor=int(exclusion_factor),
            lower_bound_kind=lower_bound_kind,
            row_range=row_range,
        )
        store._stats = None
        return store

    def _init_core(
        self,
        *,
        centered_values: np.ndarray,
        base_means: np.ndarray,
        base_stds: np.ndarray,
        base_length: int,
        capacity: int,
        exclusion_factor: int,
        lower_bound_kind: str,
        row_range: tuple[int, int],
    ) -> None:
        self._values = centered_values
        self._base_length = base_length
        self._capacity = capacity
        self._exclusion_factor = exclusion_factor
        self._lower_bound_kind = lower_bound_kind

        n = self._values.size
        self._num_profiles = n - self._base_length + 1
        row_start, row_stop = int(row_range[0]), int(row_range[1])
        if not 0 <= row_start <= row_stop <= self._num_profiles:
            raise InvalidParameterError(
                f"row range [{row_start}, {row_stop}) is out of bounds for "
                f"{self._num_profiles} profiles"
            )
        self._row_start = row_start
        self._row_stop = row_stop
        if base_means.shape != (self._num_profiles,):
            raise InvalidParameterError(
                f"expected {self._num_profiles} base means, got {base_means.shape}"
            )
        self._base_means = base_means
        self._base_stds = base_stds
        self._base_constant = base_stds <= 0.0
        #: one cancellation-risk decision for every base-profile ingest
        self._base_compensated = compensation_needed(base_means, base_means, base_stds)

        shape = (row_stop - row_start, self._capacity)
        self._neighbors = np.full(shape, -1, dtype=np.int64)
        self._dot_products = np.zeros(shape, dtype=np.float64)
        self._base_correlations = np.full(shape, -np.inf, dtype=np.float64)
        #: largest base correlation among the entries *not* retained for each
        #: profile: every pruned candidate correlates at most this much with
        #: the query, so its lower bound at any longer length is at least
        #: ``LB(threshold)`` — the profile's ``maxLB``.
        self._pruned_correlation_ceiling = np.full(shape[0], -np.inf)
        #: True when every candidate neighbour was retained (no pruning risk)
        self._complete = np.zeros(shape[0], dtype=bool)
        #: True when pruning must be disabled for this offset (degenerate cases)
        self._unbounded = np.zeros(shape[0], dtype=bool)
        self._populated = np.zeros(shape[0], dtype=bool)
        #: the length the stored dot products currently refer to
        self._current_length = self._base_length

    # ------------------------------------------------------------------ #
    # construction (driven by the STOMP sweep / engine blocks)
    # ------------------------------------------------------------------ #
    @property
    def base_length(self) -> int:
        """The base subsequence length the store was built at."""
        return self._base_length

    @property
    def capacity(self) -> int:
        """Number of entries retained per profile (the paper's ``p``)."""
        return self._capacity

    @property
    def exclusion_factor(self) -> int:
        """Denominator of the trivial-match radius."""
        return self._exclusion_factor

    @property
    def lower_bound_kind(self) -> str:
        """The lower-bound flavour used for ``maxLB`` (``"tight"``/``"paper"``)."""
        return self._lower_bound_kind

    @property
    def current_length(self) -> int:
        """The length the stored dot products currently correspond to."""
        return self._current_length

    @property
    def num_profiles(self) -> int:
        """Number of base-length query offsets."""
        return self._num_profiles

    @property
    def row_range(self) -> tuple[int, int]:
        """The ``[start, stop)`` row range this store/fragment covers."""
        return (self._row_start, self._row_stop)

    @property
    def is_fragment(self) -> bool:
        """True when this store covers only a sub-range of the rows."""
        return (self._row_start, self._row_stop) != (0, self._num_profiles)

    def require_ready_for_ingest(self, window: int) -> None:
        """Validate that this store can receive a base pass at ``window``.

        Shared by every ``ingest_store=`` entry point (the serial STOMP
        sweep and the engine's block-local path) so the contract — built
        at this base length, not yet advanced — is enforced identically
        everywhere.
        """
        if self._base_length != int(window):
            raise InvalidParameterError(
                f"ingest_store base length {self._base_length} does not "
                f"match the window {window}"
            )
        if self._current_length != self._base_length:
            raise InvalidParameterError(
                "ingest_store was already advanced past its base length"
            )

    def ingest_base_profile(self, offset: int, dot_products: np.ndarray) -> None:
        """Removed raw-value ingest — the store is mean-centered now.

        This shim exists so callers still holding *raw* sliding dot products
        fail loudly instead of silently corrupting the store (a raw product
        at a large series offset is numerically nothing like its centered
        counterpart).  Feed :meth:`ingest_centered_profile` with products
        taken on :attr:`~repro.stats.sliding.SlidingStats.centered_values`
        — exactly what the centered STOMP sweep's ``profile_callback``
        carries — or let the engine ingest for you via
        ``stomp(..., ingest_store=store)``.
        """
        raise InvalidParameterError(
            "PartialProfileStore.ingest_base_profile() was removed: the store "
            "is mean-centered and no longer accepts raw dot products.  Pass "
            "products computed on the centered series to "
            "ingest_centered_profile(), or use stomp(..., ingest_store=store)."
        )

    def ingest_centered_profile(self, offset: int, dot_products: np.ndarray) -> None:
        """Retain the most promising entries of one base distance profile.

        Called once per query offset with the sliding dot products of that
        offset's base-length profile, taken on the **mean-centered** series
        (``stats.centered_values`` — the space the centered STOMP sweep and
        the engine blocks run in).
        """
        if not self._row_start <= offset < self._row_stop:
            raise InvalidParameterError(
                f"profile {offset} is outside this store's row range "
                f"[{self._row_start}, {self._row_stop})"
            )
        row = offset - self._row_start
        if self._populated[row]:
            raise InvalidParameterError(f"profile {offset} was already ingested")
        length = self._base_length
        qt = np.asarray(dot_products, dtype=np.float64)
        if qt.size != self._num_profiles:
            raise InvalidParameterError(
                f"expected {self._num_profiles} dot products, got {qt.size}"
            )
        sigma_i = self._base_stds[offset]
        if sigma_i <= 0.0:
            # Degenerate query: the correlation is undefined, so the lower
            # bound cannot be trusted.  Disable pruning for this offset.
            self._unbounded[row] = True
            self._populated[row] = True
            return

        centered = centered_dot_products(
            qt,
            length,
            float(self._base_means[offset]),
            self._base_means,
            compensated=self._base_compensated,
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            correlations = centered / (length * sigma_i * self._base_stds)
        # Neighbours that are constant at the base length do not obey the
        # bound either; give them the best possible correlation so they are
        # retained (and therefore tracked exactly) whenever possible.
        correlations = np.where(self._base_constant, 1.0, correlations)
        np.clip(correlations, -1.0, 1.0, out=correlations)

        radius = default_exclusion_radius(length, self._exclusion_factor)
        start = max(0, offset - radius)
        stop = min(self._num_profiles, offset + radius + 1)
        candidate_mask = np.ones(self._num_profiles, dtype=bool)
        candidate_mask[start:stop] = False
        candidate_indices = np.flatnonzero(candidate_mask)

        if candidate_indices.size == 0:
            self._complete[row] = True
            self._populated[row] = True
            return

        if candidate_indices.size <= self._capacity:
            kept = candidate_indices
            self._complete[row] = True
        else:
            candidate_correlations = correlations[candidate_indices]
            partition = np.argpartition(candidate_correlations, -self._capacity)
            top = partition[-self._capacity :]
            kept = candidate_indices[top]
            self._pruned_correlation_ceiling[row] = float(
                candidate_correlations[partition[: -self._capacity]].max()
            )
            # If some constant-at-base neighbour was *not* retained we cannot
            # bound its distance at longer lengths: disable pruning here.
            constant_candidates = int(np.count_nonzero(self._base_constant[candidate_indices]))
            if constant_candidates:
                constant_kept = int(np.count_nonzero(self._base_constant[kept]))
                if constant_kept < constant_candidates:
                    self._unbounded[row] = True

        order = np.argsort(-correlations[kept])
        kept = kept[order]
        count = kept.size
        self._neighbors[row, :count] = kept
        self._dot_products[row, :count] = qt[kept]
        self._base_correlations[row, :count] = correlations[kept]
        self._populated[row] = True

    # ------------------------------------------------------------------ #
    # fragments: split / export / merge
    # ------------------------------------------------------------------ #
    def split(self, row_range: tuple[int, int]) -> "PartialProfileStore":
        """An empty fragment of this store covering ``[start, stop)`` rows.

        The fragment shares the centered series and base statistics (no
        copies) but owns its retention arrays.  Ingest its rows, then
        :meth:`merge` it back; disjoint fragments merged in any order
        reproduce the serially-ingested store bit for bit.
        """
        start, stop = int(row_range[0]), int(row_range[1])
        if not self._row_start <= start <= stop <= self._row_stop:
            raise InvalidParameterError(
                f"split range [{start}, {stop}) is outside this store's rows "
                f"[{self._row_start}, {self._row_stop})"
            )
        if self._current_length != self._base_length:
            raise InvalidParameterError(
                "cannot split a store whose dot products were already advanced "
                f"to length {self._current_length}"
            )
        fragment = type(self).fragment(
            self._values,
            self._base_means,
            self._base_stds,
            self._base_length,
            self._capacity,
            exclusion_factor=self._exclusion_factor,
            lower_bound_kind=self._lower_bound_kind,
            row_range=(start, stop),
        )
        return fragment

    def export_state(self) -> dict:
        """The fragment's rows as a compact picklable mapping.

        Contains only the per-row retention arrays plus identifying
        metadata — O(rows × capacity), independent of the series length —
        so a process-pool worker ships its block's rows, not the series.
        """
        state = {
            "row_range": (self._row_start, self._row_stop),
            "base_length": self._base_length,
            "capacity": self._capacity,
            "exclusion_factor": self._exclusion_factor,
            "lower_bound_kind": self._lower_bound_kind,
            "current_length": self._current_length,
        }
        for field in _STATE_FIELDS:
            state[field] = getattr(self, f"_{field}")
        return state

    def merge(self, other: "PartialProfileStore | Mapping") -> None:
        """Copy a disjoint fragment's rows into this store.

        ``other`` is a fragment produced by :meth:`split` (or
        :meth:`fragment`) — or its :meth:`export_state` mapping when it
        crossed a process boundary.  Both stores must still be at the base
        length and agree on every configuration knob; the target rows must
        not have been ingested yet.  The copy is positional, so the merged
        store is bit-for-bit the store that would have ingested those rows
        serially.
        """
        state = other.export_state() if isinstance(other, PartialProfileStore) else other
        for knob in ("base_length", "capacity", "exclusion_factor", "lower_bound_kind"):
            if state[knob] != getattr(self, f"_{knob}"):
                raise InvalidParameterError(
                    f"cannot merge stores with different {knob}: "
                    f"{state[knob]!r} != {getattr(self, f'_{knob}')!r}"
                )
        if state["current_length"] != self._base_length:
            raise InvalidParameterError(
                "cannot merge a fragment whose dot products were advanced to "
                f"length {state['current_length']}"
            )
        if self._current_length != self._base_length:
            raise InvalidParameterError(
                "cannot merge into a store whose dot products were advanced to "
                f"length {self._current_length}"
            )
        start, stop = (int(edge) for edge in state["row_range"])
        if not self._row_start <= start <= stop <= self._row_stop:
            raise InvalidParameterError(
                f"fragment rows [{start}, {stop}) are outside this store's rows "
                f"[{self._row_start}, {self._row_stop})"
            )
        local = slice(start - self._row_start, stop - self._row_start)
        if bool(self._populated[local].any()):
            raise InvalidParameterError(
                f"rows [{start}, {stop}) were already ingested in this store"
            )
        for field in _STATE_FIELDS:
            getattr(self, f"_{field}")[local] = state[field]

    # ------------------------------------------------------------------ #
    # per-length evaluation
    # ------------------------------------------------------------------ #
    def advance_to(self, length: int) -> None:
        """Grow the stored dot products from the current length to ``length``.

        The update appends one trailing **centered** product per intermediate
        length.  Accumulation stays sequential per step — each lane's running
        sum must round exactly like the historical one-length-at-a-time loop
        (:meth:`_advance_to_stepwise`, kept for the equivalence test) — but
        everything invariant across the tail window is hoisted out of the
        loop: row indices, neighbour applicability cutoffs (``applicable`` at
        step ``t`` is simply ``t < n - neighbour``, monotone in ``t``), and
        the gather bases.  Each step then classifies itself with two O(rows)
        prefix reductions: all-applicable steps take a mask-free fused
        gather-multiply-add (the common case while the tail window is short),
        none-applicable steps skip outright, and only the shrinking boundary
        between them pays the masked update.  This is VALMOD's per-length hot
        loop when ``length_step > 1`` or the length range is wide.
        """
        if length < self._current_length:
            raise InvalidParameterError(
                f"cannot shrink the store from length {self._current_length} to {length}"
            )
        if length > self._values.size:
            raise InvalidParameterError(
                f"length {length} exceeds the series length {self._values.size}"
            )
        start_length = self._current_length
        if length <= start_length:
            return
        values = self._values
        n = values.size
        neighbors = self._neighbors
        has_neighbor = neighbors >= 0
        # Step t contributes to a lane iff t < cap; cap = 0 parks empty lanes.
        neighbor_cap = np.where(has_neighbor, n - neighbors, 0)
        neighbor_base = np.where(has_neighbor, neighbors, 0)
        cap_row_min = neighbor_cap.min(axis=1)
        cap_row_max = neighbor_cap.max(axis=1)
        row_base = np.arange(self._row_start, self._row_stop)
        for current in range(start_length, length):
            # Rows whose query subsequence still fits at length current + 1.
            local_stop = min(self._row_stop, n - current)
            count = local_stop - self._row_start
            if count <= 0:
                break
            if current >= int(cap_row_max[:count].max()):
                continue
            query_tail = values[row_base[:count] + current][:, np.newaxis]
            if current < int(cap_row_min[:count].min()):
                self._dot_products[:count] += (
                    query_tail * values[neighbors[:count] + current]
                )
            else:
                applicable = current < neighbor_cap[:count]
                neighbor_tail = np.where(
                    applicable,
                    values[np.minimum(neighbor_base[:count] + current, n - 1)],
                    0.0,
                )
                self._dot_products[:count] += np.where(
                    applicable, query_tail * neighbor_tail, 0.0
                )
        self._current_length = length

    def _advance_to_stepwise(self, length: int) -> None:
        """The historical one-length-per-pass advance, kept as the reference.

        Bit-for-bit equivalent to :meth:`advance_to` by construction (the
        tests compare the two lane by lane); not used on any hot path.
        """
        if length < self._current_length:
            raise InvalidParameterError(
                f"cannot shrink the store from length {self._current_length} to {length}"
            )
        if length > self._values.size:
            raise InvalidParameterError(
                f"length {length} exceeds the series length {self._values.size}"
            )
        values = self._values
        n = values.size
        while self._current_length < length:
            current = self._current_length
            new_length = current + 1
            # Rows whose query subsequence still fits at the new length.
            row_limit = n - new_length + 1
            local_stop = min(self._row_stop, row_limit)
            if local_stop > self._row_start:
                local = slice(0, local_stop - self._row_start)
                rows = np.arange(self._row_start, local_stop)
                neighbors = self._neighbors[local]
                applicable = (neighbors >= 0) & (neighbors <= n - new_length)
                if applicable.any():
                    query_tail = values[rows + current][:, np.newaxis]
                    neighbor_tail = np.where(
                        applicable, values[np.clip(neighbors + current, 0, n - 1)], 0.0
                    )
                    self._dot_products[local] += np.where(
                        applicable, query_tail * neighbor_tail, 0.0
                    )
            self._current_length = new_length

    def evaluate(self, length: int) -> LengthEvaluation:
        """Evaluate every partial profile at ``length``.

        Advances the dot products if needed, computes the true distances of
        the retained (still applicable) entries, the per-profile ``minDist``
        and ``maxLB``, and the valid/non-valid classification.
        """
        if self.is_fragment:
            raise InvalidParameterError(
                f"cannot evaluate a fragment covering rows "
                f"[{self._row_start}, {self._row_stop}); merge it into a full "
                "store first"
            )
        if self._stats is None:
            raise InvalidParameterError(
                "this store was built without sliding statistics and cannot "
                "evaluate; merge it into a stats-backed store"
            )
        if length < self._base_length:
            raise InvalidParameterError(
                f"length {length} is smaller than the base length {self._base_length}"
            )
        self.advance_to(length)
        values = self._values
        n = values.size
        num_rows = n - length + 1
        # Centered window means: the stored products are centered, so the
        # conversion subtracts length * mu~_i * mu~_j (see module docstring).
        means, stds = self._stats.centered_mean_std(length)
        radius = default_exclusion_radius(length, self._exclusion_factor)

        rows = np.arange(num_rows)
        neighbors = self._neighbors[:num_rows]
        qt = self._dot_products[:num_rows]

        applicable = (
            (neighbors >= 0)
            & (neighbors < num_rows)
            & (np.abs(neighbors - rows[:, np.newaxis]) > radius)
        )
        safe_neighbors = np.clip(neighbors, 0, num_rows - 1)
        mu_i = means[:num_rows][:, np.newaxis]
        sigma_i = stds[:num_rows][:, np.newaxis]
        mu_j = means[safe_neighbors]
        sigma_j = stds[safe_neighbors]

        centered = centered_dot_products(
            qt,
            length,
            mu_i,
            mu_j,
            compensated=self._stats.conversion_compensated(length),
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            correlation = centered / (length * sigma_i * sigma_j)
        np.clip(correlation, -1.0, 1.0, out=correlation)
        squared = 2.0 * length * (1.0 - correlation)
        np.maximum(squared, 0.0, out=squared)
        distances = np.sqrt(squared)
        # Constant-subsequence conventions.
        i_const = sigma_i <= 0.0
        j_const = sigma_j <= 0.0
        distances = np.where(i_const & j_const, 0.0, distances)
        distances = np.where(i_const ^ j_const, np.sqrt(length), distances)
        distances = np.where(applicable, distances, np.inf)

        min_positions = np.argmin(distances, axis=1)
        min_distances = distances[rows, min_positions]
        min_indices = np.where(
            np.isfinite(min_distances), neighbors[rows, min_positions], -1
        )

        max_lower_bounds = np.asarray(
            lower_bound(
                self._pruned_correlation_ceiling[:num_rows],
                self._base_length,
                length,
                self._base_stds[:num_rows],
                stds[:num_rows],
                kind=self._lower_bound_kind,
            ),
            dtype=np.float64,
        )
        # If any subsequence of this length is constant, its distance to any
        # query is sqrt(length) by convention, which the correlation-based
        # bound does not cover; cap the threshold accordingly.
        if bool(np.any(stds[:num_rows] <= 0.0)):
            cap = max(float(np.sqrt(length)) - STD_EPSILON, 0.0)
            max_lower_bounds = np.minimum(max_lower_bounds, cap)
        # Degenerate cases where the bound does not hold: disable pruning.
        max_lower_bounds = np.where(self._unbounded[:num_rows], 0.0, max_lower_bounds)
        max_lower_bounds = np.where(stds[:num_rows] <= 0.0, 0.0, max_lower_bounds)
        # A complete profile retains every candidate, so its retained minimum
        # is exact no matter what: the threshold is infinite by definition.
        max_lower_bounds = np.where(self._complete[:num_rows], np.inf, max_lower_bounds)

        valid = min_distances <= max_lower_bounds
        return LengthEvaluation(
            length=length,
            min_distances=min_distances,
            min_indices=min_indices.astype(np.int64),
            max_lower_bounds=max_lower_bounds,
            valid=valid,
        )
