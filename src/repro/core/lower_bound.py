"""The VALMOD lower-bounding distance.

The heart of VALMOD is a distance that lower-bounds the z-normalised
Euclidean distance between two subsequences of length ``L = l + k`` using
only quantities already available at the base length ``l``:

* ``q`` — the Pearson correlation of the two subsequences at length ``l``
  (obtained from the base distance profile);
* the standard deviation of the *query* subsequence at lengths ``l`` and
  ``L`` (an ``O(1)`` lookup from :class:`~repro.stats.SlidingStats`).

Derivation (Cauchy–Schwarz on the trailing window, see DESIGN.md):  write the
length-``L`` z-normalised subsequences as unit vectors ``u, v`` in ``R^L``;
the prefix of ``u`` is an affine image of the base-length z-normalised query,
so the correlation at length ``L`` satisfies

    rho_L  <=  sqrt(1 - alpha² · (1 - q₊²)),       q₊ = max(q, 0),
    alpha² = l·sigma²_{i,l} / (L·sigma²_{i,L})     (alpha² <= 1 always),

which yields the *tight* bound

    LB_tight² = 2·L·(1 - sqrt(1 - alpha²·(1 - q₊²))).

Using ``1 - sqrt(1-z) >= z/2`` gives the simpler bound reported in the
paper::

    LB_paper² = l·sigma²_{i,l}·(1 - q₊²) / sigma²_{i,L}

Both bounds depend on the neighbour only through ``q``; therefore the ranking
of the entries of a distance profile by lower bound is the ranking by ``q``
(descending) and is *independent of the target length* — the property VALMOD
exploits to keep only the ``p`` most promising entries per profile.

Degenerate (constant) subsequences fall outside the derivation; callers must
bypass the bound for them (VALMOD sets the bound to ``0``, which is always
valid and simply disables pruning for those offsets).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "LOWER_BOUND_KINDS",
    "lower_bound_paper",
    "lower_bound_tight",
    "lower_bound",
]

LOWER_BOUND_KINDS = ("tight", "paper")


def _validate_lengths(base_length: int, target_length: int) -> None:
    if base_length < 1:
        raise InvalidParameterError(f"base_length must be >= 1, got {base_length}")
    if target_length < base_length:
        raise InvalidParameterError(
            f"target_length ({target_length}) must be >= base_length ({base_length})"
        )


def _alpha_squared(
    base_length: int,
    target_length: int,
    query_std_base: np.ndarray | float,
    query_std_target: np.ndarray | float,
) -> np.ndarray:
    """``alpha² = l·sigma_l² / (L·sigma_L²)``, clipped into ``[0, 1]``.

    Division by a zero target deviation is mapped to ``alpha² = 0`` (the
    caller is expected to bypass the bound for constant subsequences anyway;
    ``alpha² = 0`` makes the bound collapse to ``0``, which is always valid).
    """
    sigma_base = np.asarray(query_std_base, dtype=np.float64)
    sigma_target = np.asarray(query_std_target, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        alpha_sq = (base_length * np.square(sigma_base)) / (
            target_length * np.square(sigma_target)
        )
    alpha_sq = np.where(sigma_target <= 0.0, 0.0, alpha_sq)
    return np.clip(alpha_sq, 0.0, 1.0)


def lower_bound_paper(
    correlation: np.ndarray | float,
    base_length: int,
    target_length: int,
    query_std_base: np.ndarray | float,
    query_std_target: np.ndarray | float,
) -> np.ndarray | float:
    """The paper's lower bound ``sqrt(l·sigma_l²·(1 - q₊²) / sigma_L²)``."""
    _validate_lengths(base_length, target_length)
    q_pos = np.maximum(np.clip(np.asarray(correlation, dtype=np.float64), -1.0, 1.0), 0.0)
    alpha_sq = _alpha_squared(base_length, target_length, query_std_base, query_std_target)
    squared = target_length * alpha_sq * (1.0 - np.square(q_pos))
    result = np.sqrt(np.maximum(squared, 0.0))
    if np.ndim(correlation) == 0 and np.ndim(query_std_base) == 0:
        return float(result)
    return result


def lower_bound_tight(
    correlation: np.ndarray | float,
    base_length: int,
    target_length: int,
    query_std_base: np.ndarray | float,
    query_std_target: np.ndarray | float,
) -> np.ndarray | float:
    """The tighter bound ``sqrt(2·L·(1 - sqrt(1 - alpha²·(1 - q₊²))))``."""
    _validate_lengths(base_length, target_length)
    q_pos = np.maximum(np.clip(np.asarray(correlation, dtype=np.float64), -1.0, 1.0), 0.0)
    alpha_sq = _alpha_squared(base_length, target_length, query_std_base, query_std_target)
    inner = np.clip(1.0 - alpha_sq * (1.0 - np.square(q_pos)), 0.0, 1.0)
    squared = 2.0 * target_length * (1.0 - np.sqrt(inner))
    result = np.sqrt(np.maximum(squared, 0.0))
    if np.ndim(correlation) == 0 and np.ndim(query_std_base) == 0:
        return float(result)
    return result


def lower_bound(
    correlation: np.ndarray | float,
    base_length: int,
    target_length: int,
    query_std_base: np.ndarray | float,
    query_std_target: np.ndarray | float,
    *,
    kind: str = "tight",
) -> np.ndarray | float:
    """Dispatch between :func:`lower_bound_tight` and :func:`lower_bound_paper`."""
    if kind == "tight":
        return lower_bound_tight(
            correlation, base_length, target_length, query_std_base, query_std_target
        )
    if kind == "paper":
        return lower_bound_paper(
            correlation, base_length, target_length, query_std_base, query_std_target
        )
    raise InvalidParameterError(
        f"unknown lower bound kind {kind!r}; expected one of {LOWER_BOUND_KINDS}"
    )
