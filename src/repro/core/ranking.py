"""Ranking motif pairs of different lengths.

Raw z-normalised Euclidean distances grow with the subsequence length, so
they cannot be compared across lengths.  The paper introduces the
*length-normalised distance* ``d_n = d · sqrt(1/l)`` and ranks variable-length
motif pairs by it, which "favours longer and similar sequences".

Two motif pairs found at different lengths frequently describe the same
underlying event (e.g. the same pair of heartbeats seen at length 50 and at
length 56); the ranking helpers can optionally collapse such near-duplicates
so a top-k list covers k *distinct* events.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.profile import MotifPair

__all__ = ["rank_motif_pairs", "deduplicate_pairs", "pairs_describe_same_event"]


def pairs_describe_same_event(
    first: MotifPair, second: MotifPair, *, overlap_fraction: float = 0.5
) -> bool:
    """Heuristic: do two (possibly different-length) pairs cover the same event?

    Two pairs are considered the same event when *both* members of the shorter
    pair overlap the corresponding members of the longer pair by at least
    ``overlap_fraction`` of the shorter length (members are matched in the
    order that maximises the overlap).
    """
    if not 0.0 < overlap_fraction <= 1.0:
        raise InvalidParameterError(
            f"overlap_fraction must be in (0, 1], got {overlap_fraction}"
        )
    shorter, longer = (first, second) if first.window <= second.window else (second, first)
    required = overlap_fraction * shorter.window

    def overlap(offset_short: int, offset_long: int) -> float:
        start = max(offset_short, offset_long)
        stop = min(offset_short + shorter.window, offset_long + longer.window)
        return max(0.0, stop - start)

    direct = min(
        overlap(shorter.offset_a, longer.offset_a),
        overlap(shorter.offset_b, longer.offset_b),
    )
    crossed = min(
        overlap(shorter.offset_a, longer.offset_b),
        overlap(shorter.offset_b, longer.offset_a),
    )
    return max(direct, crossed) >= required


def deduplicate_pairs(
    pairs: Sequence[MotifPair], *, overlap_fraction: float = 0.5
) -> List[MotifPair]:
    """Keep, for every group of same-event pairs, only the best-ranked one.

    ``pairs`` must already be sorted by preference (best first); the result
    preserves that order.
    """
    kept: List[MotifPair] = []
    for pair in pairs:
        if any(
            pairs_describe_same_event(pair, existing, overlap_fraction=overlap_fraction)
            for existing in kept
        ):
            continue
        kept.append(pair)
    return kept


def rank_motif_pairs(
    pairs: Iterable[MotifPair],
    k: int | None = None,
    *,
    distinct_events: bool = True,
    overlap_fraction: float = 0.5,
) -> List[MotifPair]:
    """Rank motif pairs of any lengths by length-normalised distance.

    Parameters
    ----------
    pairs:
        Candidate pairs (typically the per-length top-k lists of a VALMOD run).
    k:
        Return at most this many pairs (all of them when None).
    distinct_events:
        Collapse pairs that describe the same underlying event at different
        lengths, keeping the best-normalised one (default True — this is what
        makes the ranking a list of *different* insights, as in the demo GUI).
    overlap_fraction:
        Overlap threshold used by the same-event heuristic.
    """
    if k is not None and k < 1:
        raise InvalidParameterError(f"k must be >= 1 or None, got {k}")
    ordered = sorted(pairs, key=lambda pair: (pair.normalized_distance, -pair.window))
    if distinct_events:
        ordered = deduplicate_pairs(ordered, overlap_fraction=overlap_fraction)
    if k is not None:
        ordered = ordered[:k]
    return ordered
