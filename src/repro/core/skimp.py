"""SKIMP-style pan matrix profile — an alternative variable-length view.

After VALMOD, the matrix-profile line of work proposed a second way of
looking at "all lengths at once": compute the complete matrix profile for a
(sub)set of lengths and stack the length-normalised profiles into a matrix —
the *pan matrix profile* — visiting the lengths in a breadth-first
binary-split order so that interrupting the computation still leaves the
range uniformly covered (SKIMP, "Matrix Profile XX").

The library implements it for two reasons:

* as an **ablation baseline** for VALMOD: the pan profile pays the full
  per-length cost for every evaluated length, which is exactly the cost
  VALMOD's lower-bound pruning avoids — the ablation benchmark compares the
  two on identical length ranges;
* as an **analysis companion**: the pan profile contains the best match of
  *every* position at *every* evaluated length (not only the top-k pairs),
  so it can answer questions VALMAP deliberately summarises away.

Collapsing the pan profile over the length axis (per-position minimum of the
length-normalised distances) yields the same ``⟨MPn, IP, LP⟩`` triple as
VALMAP built from complete per-length profiles; the tests use this to
cross-check the two structures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.core.ranking import rank_motif_pairs
from repro.core.valmap import Valmap
from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.profile import MatrixProfile, MotifPair
from repro.matrix_profile.stomp import stomp
from repro.series.validation import validate_length_range, validate_series
from repro.stats.sliding import SlidingStats

__all__ = ["PanMatrixProfile", "breadth_first_lengths", "skimp"]


def breadth_first_lengths(min_length: int, max_length: int) -> List[int]:
    """Binary-split (breadth-first) visiting order of ``[min_length, max_length]``.

    The first few visited lengths split the range into halves, quarters, ...,
    so a run interrupted after ``k`` lengths has evaluated a roughly uniform
    sample of the whole range — SKIMP's anytime property over lengths.
    """
    if min_length > max_length:
        raise InvalidParameterError(
            f"min_length {min_length} exceeds max_length {max_length}"
        )
    visited: List[int] = []
    seen = set()
    queue: List[tuple[int, int]] = [(min_length, max_length)]
    while queue:
        low, high = queue.pop(0)
        middle = (low + high) // 2
        if middle not in seen:
            visited.append(middle)
            seen.add(middle)
        if low <= middle - 1:
            queue.append((low, middle - 1))
        if middle + 1 <= high:
            queue.append((middle + 1, high))
    return visited


@dataclass(frozen=True)
class PanMatrixProfile:
    """The pan matrix profile of one series over a set of lengths.

    Attributes
    ----------
    lengths:
        The evaluated subsequence lengths, ascending.
    normalized_profiles:
        2-D array of shape ``(len(lengths), n - min(lengths) + 1)``; row ``r``
        holds the *length-normalised* matrix profile at ``lengths[r]``, padded
        with ``nan`` beyond its own number of subsequences.
    index_profiles:
        Best-match offsets, same shape, padded with ``-1``.
    min_length, max_length:
        The requested length range (the evaluated lengths are a subset).
    """

    lengths: np.ndarray
    normalized_profiles: np.ndarray
    index_profiles: np.ndarray
    min_length: int
    max_length: int
    elapsed_seconds: float = 0.0

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=np.int64)
        profiles = np.asarray(self.normalized_profiles, dtype=np.float64)
        indices = np.asarray(self.index_profiles, dtype=np.int64)
        if lengths.ndim != 1 or lengths.size == 0:
            raise InvalidParameterError("at least one evaluated length is required")
        if profiles.shape != indices.shape or profiles.ndim != 2:
            raise InvalidParameterError(
                "normalized_profiles and index_profiles must be 2-D arrays of equal shape"
            )
        if profiles.shape[0] != lengths.size:
            raise InvalidParameterError(
                "one profile row is required per evaluated length"
            )
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(self, "normalized_profiles", profiles)
        object.__setattr__(self, "index_profiles", indices)

    def __len__(self) -> int:
        return int(self.lengths.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self.lengths.tolist())

    # ------------------------------------------------------------------ #
    # per-length access
    # ------------------------------------------------------------------ #
    def _row(self, length: int) -> int:
        matches = np.flatnonzero(self.lengths == length)
        if matches.size == 0:
            raise InvalidParameterError(
                f"length {length} was not evaluated; available: {self.lengths.tolist()}"
            )
        return int(matches[0])

    def profile_at(self, length: int) -> MatrixProfile:
        """The (de-normalised) matrix profile of one evaluated length."""
        row = self._row(length)
        count = self.normalized_profiles.shape[1] - (length - self.min_length)
        normalized = self.normalized_profiles[row, :count]
        indices = self.index_profiles[row, :count]
        return MatrixProfile(
            distances=normalized * np.sqrt(length),
            indices=np.array(indices),
            window=int(length),
            exclusion_radius=default_exclusion_radius(int(length)),
        )

    def best_pair_at(self, length: int) -> MotifPair:
        """The best motif pair of one evaluated length."""
        return self.profile_at(length).best()

    # ------------------------------------------------------------------ #
    # cross-length views
    # ------------------------------------------------------------------ #
    def top_motifs(self, k: int = 10, *, distinct_events: bool = True) -> List[MotifPair]:
        """Variable-length top-``k`` pairs across the evaluated lengths."""
        pairs = []
        for length in self.lengths.tolist():
            try:
                pairs.append(self.best_pair_at(int(length)))
            except EmptyResultError:
                continue
        return rank_motif_pairs(pairs, k, distinct_events=distinct_events)

    def best_motif(self) -> MotifPair:
        """The single best variable-length pair (smallest length-normalised distance)."""
        ranked = self.top_motifs(1, distinct_events=False)
        if not ranked:
            raise EmptyResultError("the pan profile holds no finite entry")
        return ranked[0]

    def collapse(self) -> Valmap:
        """Collapse the pan profile into a VALMAP ``⟨MPn, IP, LP⟩`` triple.

        Every position adopts the evaluated length that gives it the smallest
        length-normalised best-match distance — the dense analogue of the
        VALMAP update rule (which only sees the top-k pairs of each length).
        """
        size = self.normalized_profiles.shape[1]
        valmap = Valmap(self.min_length, int(self.max_length), size)
        with np.errstate(invalid="ignore"):
            filled = np.where(np.isnan(self.normalized_profiles), np.inf, self.normalized_profiles)
        best_rows = np.argmin(filled, axis=0)
        positions = np.arange(size)
        best_values = filled[best_rows, positions]
        valmap.normalized_profile[:] = best_values
        valmap.index_profile[:] = self.index_profiles[best_rows, positions]
        valmap.length_profile[:] = self.lengths[best_rows]
        # Positions beyond the reach of every evaluated length stay unset.
        unreachable = ~np.isfinite(best_values)
        valmap.index_profile[unreachable] = -1
        valmap.length_profile[unreachable] = self.min_length
        return valmap

    def length_of_best_match(self) -> np.ndarray:
        """For every position, the evaluated length with the smallest normalised distance."""
        return np.array(self.collapse().length_profile)

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "min_length": self.min_length,
            "max_length": self.max_length,
            "lengths": self.lengths.tolist(),
            "elapsed_seconds": self.elapsed_seconds,
            "normalized_profiles": self.normalized_profiles.tolist(),
            "index_profiles": self.index_profiles.tolist(),
        }


def skimp(
    series,
    min_length: int,
    max_length: int,
    *,
    num_lengths: int | None = None,
    lengths: Sequence[int] | None = None,
    exclusion_factor: int = 4,
    engine: object | None = None,
    n_jobs: int | None = None,
    kernel: str | None = None,
    stats: SlidingStats | None = None,
) -> PanMatrixProfile:
    """Compute a pan matrix profile over ``[min_length, max_length]``.

    Parameters
    ----------
    num_lengths:
        When given, only the first ``num_lengths`` lengths of the breadth-first
        order are evaluated (SKIMP's anytime behaviour over lengths); by
        default every length of the range is evaluated.
    lengths:
        Explicit list of lengths to evaluate (overrides ``num_lengths``); they
        must all fall inside the range.
    exclusion_factor:
        Trivial-match exclusion denominator passed to the per-length STOMP
        runs.
    engine, n_jobs:
        ``engine=None`` (default) keeps the serial per-length loop.
        Otherwise the per-length profiles are dispatched as one batch of
        independent jobs through :func:`repro.engine.batch.compute_profiles`
        — the pan profile is the engine's best case, since every length is
        a full profile with no cross-length data dependency.
    kernel:
        Sweep kernel of the per-length STOMP runs
        (:mod:`repro.matrix_profile.kernels`).
    """
    values = validate_series(series)
    min_length, max_length = validate_length_range(values.size, min_length, max_length)

    if lengths is not None:
        chosen = sorted({int(length) for length in lengths})
        for length in chosen:
            if length < min_length or length > max_length:
                raise InvalidParameterError(
                    f"explicit length {length} outside range [{min_length}, {max_length}]"
                )
        if not chosen:
            raise InvalidParameterError("the explicit length list must not be empty")
    else:
        order = breadth_first_lengths(min_length, max_length)
        if num_lengths is not None:
            if num_lengths < 1:
                raise InvalidParameterError(f"num_lengths must be >= 1, got {num_lengths}")
            order = order[:num_lengths]
        chosen = sorted(order)

    started = time.perf_counter()
    size = values.size - min_length + 1
    normalized = np.full((len(chosen), size), np.nan, dtype=np.float64)
    indices = np.full((len(chosen), size), -1, dtype=np.int64)
    def fill_row(row: int, profile: MatrixProfile) -> None:
        count = len(profile)
        normalized[row, :count] = profile.normalized_distances
        indices[row, :count] = profile.indices

    if engine is not None:
        from repro.engine.batch import ProfileJob, compute_profiles

        jobs = [
            ProfileJob(
                values,
                window=length,
                exclusion_radius=default_exclusion_radius(length, exclusion_factor),
                kernel=kernel,
            )
            for length in chosen
        ]
        for row, outcome in enumerate(
            compute_profiles(jobs, executor=engine, n_jobs=n_jobs)
        ):
            fill_row(row, outcome.unwrap())
    else:
        if stats is None:
            stats = SlidingStats(values)
        for row, length in enumerate(chosen):
            # Copy-and-discard per length: peak memory stays O(n), not O(L·n).
            fill_row(
                row,
                stomp(
                    values,
                    length,
                    exclusion_radius=default_exclusion_radius(length, exclusion_factor),
                    stats=stats,
                    kernel=kernel,
                ),
            )
            stats.forget(length)
    elapsed = time.perf_counter() - started

    return PanMatrixProfile(
        lengths=np.array(chosen, dtype=np.int64),
        normalized_profiles=normalized,
        index_profiles=indices,
        min_length=min_length,
        max_length=max_length,
        elapsed_seconds=elapsed,
    )
