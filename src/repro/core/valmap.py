"""VALMAP — the Variable-Length Matrix Profile.

The paper defines VALMAP as a triple ``⟨MPn, IP, LP⟩`` of arrays of length
``|D| - l_min + 1``:

* ``MPn`` — the matrix profile holding *length-normalised* distances,
* ``IP``  — the index profile (offset of the best match),
* ``LP``  — the length profile (length at which the best match was found).

It is initialised from the length-normalised base matrix profile (flat length
profile equal to ``l_min``) and then updated with the top-k motif pairs of
every longer length: position ``i`` is overwritten whenever a longer pair
involving ``i`` achieves a smaller length-normalised distance.  The *update
events* ("checkpoints" in the demo's GUI) are recorded so the analysis
front-end can replay the structure at any intermediate length — that is what
the demo's slider does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.profile import MatrixProfile, MotifPair
from repro.stats.distance import length_normalized

__all__ = ["ValmapCheckpoint", "Valmap"]


@dataclass(frozen=True)
class ValmapCheckpoint:
    """One VALMAP update event.

    Recorded every time a longer motif pair improves the length-normalised
    distance of a position.  ``previous_*`` fields allow the structure to be
    rolled back (or replayed forward) to any length.
    """

    offset: int
    length: int
    match: int
    normalized_distance: float
    previous_length: int
    previous_match: int
    previous_normalized_distance: float

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "offset": self.offset,
            "length": self.length,
            "match": self.match,
            "normalized_distance": self.normalized_distance,
            "previous_length": self.previous_length,
            "previous_match": self.previous_match,
            "previous_normalized_distance": self.previous_normalized_distance,
        }


class Valmap:
    """The VALMAP structure plus its update log.

    Parameters
    ----------
    min_length, max_length:
        The length range of the VALMOD run that produces the structure.
    size:
        Number of positions, ``|D| - min_length + 1``.
    """

    def __init__(self, min_length: int, max_length: int, size: int) -> None:
        if size < 1:
            raise InvalidParameterError(f"VALMAP size must be >= 1, got {size}")
        if min_length < 1 or max_length < min_length:
            raise InvalidParameterError(
                f"invalid VALMAP length range [{min_length}, {max_length}]"
            )
        self.min_length = int(min_length)
        self.max_length = int(max_length)
        self._normalized_profile = np.full(size, np.inf, dtype=np.float64)
        self._index_profile = np.full(size, -1, dtype=np.int64)
        self._length_profile = np.full(size, min_length, dtype=np.int64)
        self._checkpoints: List[ValmapCheckpoint] = []
        self._track_checkpoints = True

    # ------------------------------------------------------------------ #
    # array views (the paper's MPn, IP, LP)
    # ------------------------------------------------------------------ #
    @property
    def normalized_profile(self) -> np.ndarray:
        """``MPn`` — length-normalised best-match distances."""
        return self._normalized_profile

    @property
    def index_profile(self) -> np.ndarray:
        """``IP`` — offsets of the best matches."""
        return self._index_profile

    @property
    def length_profile(self) -> np.ndarray:
        """``LP`` — lengths at which the best matches were found."""
        return self._length_profile

    @property
    def checkpoints(self) -> List[ValmapCheckpoint]:
        """All recorded update events, in application order."""
        return list(self._checkpoints)

    def __len__(self) -> int:
        return int(self._normalized_profile.size)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_base_profile(
        cls,
        base_profile: MatrixProfile,
        max_length: int,
        *,
        track_checkpoints: bool = True,
    ) -> "Valmap":
        """Initialise VALMAP from the base-length matrix profile.

        With a fixed length this coincides with the length-normalised matrix
        profile and a flat length profile, exactly as the paper describes.
        """
        valmap = cls(base_profile.window, max_length, len(base_profile))
        valmap._track_checkpoints = track_checkpoints
        valmap._normalized_profile[:] = base_profile.normalized_distances
        valmap._index_profile[:] = base_profile.indices
        valmap._length_profile[:] = base_profile.window
        return valmap

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def update(self, offset: int, length: int, match: int, distance: float) -> bool:
        """Offer a new best-match candidate for ``offset``.

        ``distance`` is the raw z-normalised Euclidean distance at ``length``;
        it is length-normalised internally.  Returns True when the entry was
        improved (and a checkpoint recorded).
        """
        if offset < 0 or offset >= len(self):
            raise InvalidParameterError(f"offset {offset} out of range [0, {len(self)})")
        if length < self.min_length or length > self.max_length:
            raise InvalidParameterError(
                f"length {length} outside VALMAP range "
                f"[{self.min_length}, {self.max_length}]"
            )
        normalized = float(length_normalized(distance, length))
        if normalized >= self._normalized_profile[offset]:
            return False
        if self._track_checkpoints:
            self._checkpoints.append(
                ValmapCheckpoint(
                    offset=offset,
                    length=length,
                    match=match,
                    normalized_distance=normalized,
                    previous_length=int(self._length_profile[offset]),
                    previous_match=int(self._index_profile[offset]),
                    previous_normalized_distance=float(self._normalized_profile[offset]),
                )
            )
        self._normalized_profile[offset] = normalized
        self._index_profile[offset] = match
        self._length_profile[offset] = length
        return True

    def update_from_pair(self, pair: MotifPair, *, both_members: bool = True) -> int:
        """Update VALMAP from one motif pair; returns how many entries improved.

        The paper formally updates only the left member of the pair; with
        ``both_members=True`` (default) the symmetric entry is updated as
        well, since the pair distance also upper-bounds the best match of the
        right member.
        """
        improved = 0
        improved += int(self.update(pair.offset_a, pair.window, pair.offset_b, pair.distance))
        if both_members and pair.offset_b < len(self):
            improved += int(
                self.update(pair.offset_b, pair.window, pair.offset_a, pair.distance)
            )
        return improved

    def update_from_pairs(self, pairs: Iterable[MotifPair], *, both_members: bool = True) -> int:
        """Apply :meth:`update_from_pair` to every pair; returns total improvements."""
        return sum(self.update_from_pair(pair, both_members=both_members) for pair in pairs)

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def best_entry(self) -> tuple[int, int, int, float]:
        """``(offset, length, match, normalized_distance)`` of the global best entry."""
        offset = int(np.argmin(self._normalized_profile))
        return (
            offset,
            int(self._length_profile[offset]),
            int(self._index_profile[offset]),
            float(self._normalized_profile[offset]),
        )

    def updated_positions(self) -> np.ndarray:
        """Offsets whose best match was found at a length larger than ``min_length``."""
        return np.flatnonzero(self._length_profile > self.min_length)

    def checkpoints_up_to(self, length: int) -> List[ValmapCheckpoint]:
        """The update events produced by lengths ``<= length`` (the demo's slider)."""
        return [cp for cp in self._checkpoints if cp.length <= length]

    def snapshot_at(self, length: int) -> "Valmap":
        """Rebuild the VALMAP as it looked after processing lengths ``<= length``.

        Requires checkpoint tracking; raises otherwise.
        """
        if not self._track_checkpoints:
            raise InvalidParameterError(
                "snapshot_at requires checkpoint tracking to be enabled"
            )
        if length < self.min_length:
            raise InvalidParameterError(
                f"length {length} is smaller than min_length {self.min_length}"
            )
        snapshot = Valmap(self.min_length, self.max_length, len(self))
        snapshot._normalized_profile[:] = self._normalized_profile
        snapshot._index_profile[:] = self._index_profile
        snapshot._length_profile[:] = self._length_profile
        # Roll back the updates that happened after the requested length,
        # newest first, restoring the recorded previous values.
        for checkpoint in reversed(self._checkpoints):
            if checkpoint.length <= length:
                break
            snapshot._normalized_profile[checkpoint.offset] = (
                checkpoint.previous_normalized_distance
            )
            snapshot._index_profile[checkpoint.offset] = checkpoint.previous_match
            snapshot._length_profile[checkpoint.offset] = checkpoint.previous_length
        snapshot._checkpoints = self.checkpoints_up_to(length)
        return snapshot

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "min_length": self.min_length,
            "max_length": self.max_length,
            "normalized_profile": self._normalized_profile.tolist(),
            "index_profile": self._index_profile.tolist(),
            "length_profile": self._length_profile.tolist(),
            "checkpoints": [cp.as_dict() for cp in self._checkpoints],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Valmap":
        """Rebuild a VALMAP (checkpoints included) from :meth:`as_dict` output.

        Raises ``KeyError`` / ``TypeError`` / ``ValueError`` on malformed
        input; callers that need a softer failure mode (the serialization
        layer, the persistent cache) translate those themselves.
        """
        normalized = np.asarray(payload["normalized_profile"], dtype=np.float64)
        valmap = cls(int(payload["min_length"]), int(payload["max_length"]), normalized.size)
        valmap._normalized_profile[:] = normalized
        valmap._index_profile[:] = np.asarray(payload["index_profile"], dtype=np.int64)
        valmap._length_profile[:] = np.asarray(payload["length_profile"], dtype=np.int64)
        valmap._checkpoints = [
            ValmapCheckpoint(**checkpoint) for checkpoint in payload.get("checkpoints", [])
        ]
        return valmap
