"""VALMOD core: the paper's primary contribution.

Public entry points:

* :func:`~repro.core.valmod.valmod` — exact top-k motif pairs for every
  subsequence length of a range, plus VALMAP;
* :class:`~repro.core.valmap.Valmap` — the variable-length matrix profile
  meta-data structure;
* :func:`~repro.core.motif_sets.expand_motif_pair` — motif-set expansion;
* :func:`~repro.core.ranking.rank_motif_pairs` — length-normalised ranking;
* :func:`~repro.core.discords.variable_length_discords` — discord extension.
"""

from repro.core.config import ValmodConfig
from repro.core.discords import VariableLengthDiscord, variable_length_discords
from repro.core.lower_bound import lower_bound, lower_bound_paper, lower_bound_tight
from repro.core.motif_sets import MotifSet, expand_motif_pair
from repro.core.partial_profile import LengthEvaluation, PartialProfileStore
from repro.core.ranking import deduplicate_pairs, pairs_describe_same_event, rank_motif_pairs
from repro.core.results import LengthResult, PruningStats, ValmodResult
from repro.core.skimp import PanMatrixProfile, breadth_first_lengths, skimp
from repro.core.valmap import Valmap, ValmapCheckpoint
from repro.core.valmod import valmod, valmod_with_config

__all__ = [
    "LengthEvaluation",
    "LengthResult",
    "MotifSet",
    "PanMatrixProfile",
    "PartialProfileStore",
    "PruningStats",
    "Valmap",
    "ValmapCheckpoint",
    "ValmodConfig",
    "ValmodResult",
    "VariableLengthDiscord",
    "breadth_first_lengths",
    "deduplicate_pairs",
    "expand_motif_pair",
    "lower_bound",
    "lower_bound_paper",
    "lower_bound_tight",
    "pairs_describe_same_event",
    "rank_motif_pairs",
    "skimp",
    "valmod",
    "valmod_with_config",
    "variable_length_discords",
]
