"""Motif sets: expanding a motif pair to all of its occurrences.

The demo lets the user "expand a selected motif pair to the relative Motif
Set, containing all the similar subsequences of the pair in the data".  A
motif set is defined, as in the VALMOD paper, by a radius ``r``: every
subsequence whose z-normalised distance to one of the pair's members is at
most ``r`` belongs to the set (trivial matches excluded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.distance_profile import distance_profile
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.matrix_profile.profile import MotifPair
from repro.series.validation import validate_series
from repro.stats.distance import length_normalized
from repro.stats.sliding import SlidingStats

__all__ = ["MotifSet", "expand_motif_pair"]


@dataclass(frozen=True)
class MotifSet:
    """A motif pair together with every other occurrence within ``radius``.

    ``occurrences`` always contains the two pair members and is sorted by
    offset; ``distances`` holds, for each occurrence, its distance to the
    nearest pair member (0 for the members themselves).
    """

    pair: MotifPair
    radius: float
    occurrences: List[int]
    distances: List[float]

    def __len__(self) -> int:
        return len(self.occurrences)

    @property
    def window(self) -> int:
        """Subsequence length of every member of the set."""
        return self.pair.window

    @property
    def normalized_radius(self) -> float:
        """The radius divided by ``sqrt(window)`` (comparable across lengths)."""
        return float(length_normalized(self.radius, self.window))

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "pair": self.pair.as_dict(),
            "radius": self.radius,
            "occurrences": list(self.occurrences),
            "distances": list(self.distances),
        }


def expand_motif_pair(
    series,
    pair: MotifPair,
    *,
    radius: float | None = None,
    radius_factor: float = 2.0,
    exclusion_factor: int = 4,
    max_occurrences: int | None = None,
) -> MotifSet:
    """Expand a motif pair into its motif set.

    Parameters
    ----------
    series:
        The series the pair was discovered in.
    pair:
        The motif pair to expand.
    radius:
        Absolute distance threshold.  When omitted it defaults to
        ``radius_factor`` times the pair distance (the usual convention; the
        pair distance itself is the tightest meaningful choice).
    radius_factor:
        Multiplier used when ``radius`` is not given.
    exclusion_factor:
        Trivial-match radius denominator used while collecting occurrences.
    max_occurrences:
        Optional cap on the number of returned occurrences (closest first,
        then re-sorted by offset).
    """
    values = validate_series(series)
    if radius is None:
        if radius_factor <= 0:
            raise InvalidParameterError(f"radius_factor must be positive, got {radius_factor}")
        radius = radius_factor * pair.distance
    if radius < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {radius}")
    if max_occurrences is not None and max_occurrences < 2:
        raise InvalidParameterError(
            f"max_occurrences must be >= 2 (the pair itself), got {max_occurrences}"
        )
    window = pair.window
    if window > values.size:
        raise InvalidParameterError(
            f"the pair's window ({window}) exceeds the series length ({values.size})"
        )
    stats = SlidingStats(values)
    trivial_radius = default_exclusion_radius(window, exclusion_factor)

    profile_a = distance_profile(
        values, pair.offset_a, window, stats=stats, apply_exclusion=False
    )
    profile_b = distance_profile(
        values, pair.offset_b, window, stats=stats, apply_exclusion=False
    )
    nearest = np.minimum(profile_a, profile_b)

    # Greedily collect occurrences closest-first, skipping trivial matches of
    # already collected ones (including the pair members themselves).
    working = np.array(nearest)
    members: List[int] = []
    distances: List[float] = []
    for seed in (pair.offset_a, pair.offset_b):
        members.append(seed)
        distances.append(0.0)
        apply_exclusion_zone(working, seed, trivial_radius)
    while True:
        if max_occurrences is not None and len(members) >= max_occurrences:
            break
        candidate = int(np.argmin(working))
        if not np.isfinite(working[candidate]) or working[candidate] > radius:
            break
        members.append(candidate)
        distances.append(float(nearest[candidate]))
        apply_exclusion_zone(working, candidate, trivial_radius)

    order = np.argsort(members)
    ordered_members = [members[i] for i in order]
    ordered_distances = [distances[i] for i in order]
    return MotifSet(
        pair=pair,
        radius=float(radius),
        occurrences=ordered_members,
        distances=ordered_distances,
    )
