"""VALMOD — Variable-Length Motif Discovery (the paper's core algorithm).

The algorithm proceeds exactly as described in Section 2 of the paper:

1. compute the matrix profile at the smallest length ``l_min`` of the range
   with a STOMP pass; while each base distance profile is available, retain
   its ``p`` most promising entries (smallest lower bound) in a
   :class:`~repro.core.partial_profile.PartialProfileStore`;
2. for every longer length ``l_min+1 … l_max``: update the retained dot
   products incrementally, obtain each profile's ``minDist`` and ``maxLB``
   and classify it as *valid* (its retained minimum is provably the true
   minimum) or *non-valid*;
3. extract the top-k motif pairs of the length.  Whenever the smallest
   candidate value belongs to a non-valid profile (i.e. the candidate is only
   a lower bound — this is the paper's ``minLBAbs`` test failing), that
   single profile is recomputed exactly with MASS and the selection resumes;
   the output is therefore always exact;
4. update VALMAP with the top-k pairs of the length.

The result object bundles the per-length motif pairs, the pruning statistics
(Figure 2), the VALMAP meta-data (Figure 1, right) and the ranking of motif
pairs across lengths by length-normalised distance.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro import obs
from repro.core.config import ValmodConfig
from repro.core.partial_profile import PartialProfileStore
from repro.core.results import LengthResult, PruningStats, ValmodResult
from repro.core.valmap import Valmap
from repro.matrix_profile.distance_profile import distance_profile
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.matrix_profile.profile import MotifPair
from repro.matrix_profile.stomp import stomp
from repro.series.dataseries import DataSeries
from repro.series.validation import validate_length_range, validate_series
from repro.stats.sliding import SlidingStats

__all__ = ["valmod", "valmod_with_config", "publish_pruning_metrics"]

_VALMOD_METRICS = obs.scope("valmod")
_VALMOD_RUNS = _VALMOD_METRICS.counter("runs")
_VALMOD_LENGTHS = _VALMOD_METRICS.counter("lengths_evaluated")
_VALMOD_RECOMPUTED = _VALMOD_METRICS.counter("recomputed_profiles")
_VALMOD_NON_VALID = _VALMOD_METRICS.counter("non_valid_profiles")


def publish_pruning_metrics(length_results: "Dict[int, LengthResult]") -> None:
    """Publish one run's per-length pruning power to the metrics registry.

    Pruning power (the paper's Figure 2 quantity) is the fraction of
    partial distance profiles certified *without* an exact recomputation —
    :attr:`~repro.core.results.PruningStats.valid_fraction`.  Each length
    becomes a gauge ``valmod.pruning_power.len<L>`` (last run wins, which
    is the useful reading: the gauges always describe the most recent
    VALMOD invocation) plus an aggregate ``valmod.pruning_power.overall``
    weighted by per-length profile counts.  ``repro metrics`` and
    ``repro report`` both read these names.
    """
    if not obs.metrics_enabled() or not length_results:
        return
    total_profiles = 0
    total_valid = 0
    for length, result in length_results.items():
        pruning = result.pruning
        _VALMOD_METRICS.gauge(f"pruning_power.len{int(length)}").set(
            pruning.valid_fraction
        )
        total_profiles += pruning.num_profiles
        total_valid += pruning.num_valid
    overall = 1.0 if total_profiles == 0 else total_valid / total_profiles
    _VALMOD_METRICS.gauge("pruning_power.overall").set(overall)


def valmod(
    series,
    min_length: int,
    max_length: int,
    *,
    top_k: int = 3,
    profile_capacity: int = 16,
    exclusion_factor: int = 4,
    lower_bound_kind: str = "tight",
    length_step: int = 1,
    track_checkpoints: bool = True,
    update_both_members: bool = True,
    engine: object | None = None,
    n_jobs: int | None = None,
    block_size: int | None = None,
    kernel: str | None = None,
    stats: SlidingStats | None = None,
) -> ValmodResult:
    """Find the exact top-k motif pairs of every length in ``[min_length, max_length]``.

    Parameters mirror :class:`~repro.core.config.ValmodConfig`; see its
    documentation for the meaning of each knob.  ``series`` may be a plain
    array or a :class:`~repro.series.DataSeries`.

    ``engine`` / ``n_jobs`` / ``block_size`` route the base-length STOMP
    pass through the block-partitioned engine (see :mod:`repro.engine`) and
    batch the per-length exact recomputations (independent MASS calls for
    non-valid profiles) through
    :func:`repro.engine.batch.compute_profiles`.  The base pass ingests the
    partial-profile store block-locally (each block builds a store fragment,
    the fragments merge into the exact serial store), so VALMOD's dominant
    cost parallelises like any other profile computation.  ``kernel``
    selects the sweep kernel of the base pass
    (:mod:`repro.matrix_profile.kernels`).

    Returns
    -------
    ValmodResult
        Per-length top-k motif pairs, pruning statistics, the VALMAP
        meta-data structure and timing information.
    """
    config = ValmodConfig(
        min_length=min_length,
        max_length=max_length,
        top_k=top_k,
        profile_capacity=profile_capacity,
        exclusion_factor=exclusion_factor,
        lower_bound_kind=lower_bound_kind,
        length_step=length_step,
        track_checkpoints=track_checkpoints,
        update_both_members=update_both_members,
    )
    return valmod_with_config(
        series,
        config,
        engine=engine,
        n_jobs=n_jobs,
        block_size=block_size,
        kernel=kernel,
        stats=stats,
    )


def valmod_with_config(
    series,
    config: ValmodConfig,
    *,
    engine: object | None = None,
    n_jobs: int | None = None,
    block_size: int | None = None,
    kernel: str | None = None,
    stats: SlidingStats | None = None,
) -> ValmodResult:
    """Run VALMOD with an explicit :class:`~repro.core.config.ValmodConfig`.

    ``stats`` optionally reuses a precomputed
    :class:`~repro.stats.sliding.SlidingStats` of the same series (the
    :class:`repro.api.Analysis` session shares one across every call).
    """
    series_name = series.name if isinstance(series, DataSeries) else "series"
    values = validate_series(series)
    validate_length_range(values.size, config.min_length, config.max_length)

    started_wall = time.time()
    started = time.perf_counter()
    if stats is None:
        stats = SlidingStats(values)
    store = PartialProfileStore(
        values,
        stats,
        config.min_length,
        config.profile_capacity,
        exclusion_factor=config.exclusion_factor,
        lower_bound_kind=config.lower_bound_kind,
    )

    # The store ingests inside the STOMP pass: serially row by row on the
    # oracle path, block-locally (fragments merged back) when an engine is
    # configured — no per-row callback, hence nothing forces blocks serial.
    base_radius = default_exclusion_radius(config.min_length, config.exclusion_factor)
    base_profile = stomp(
        values,
        config.min_length,
        exclusion_radius=base_radius,
        stats=stats,
        ingest_store=store,
        engine=engine,
        n_jobs=n_jobs,
        block_size=block_size,
        kernel=kernel,
    )

    length_results: Dict[int, LengthResult] = {}
    base_motifs = base_profile.motifs(config.top_k)
    base_count = len(base_profile)
    length_results[config.min_length] = LengthResult(
        length=config.min_length,
        motifs=base_motifs,
        pruning=PruningStats(
            length=config.min_length,
            num_profiles=base_count,
            num_valid=base_count,
            num_non_valid=0,
            num_recomputed=0,
            min_lb_abs=float("inf"),
        ),
    )

    valmap = Valmap.from_base_profile(
        base_profile, config.max_length, track_checkpoints=config.track_checkpoints
    )

    total_recomputed = 0
    total_non_valid = 0
    for length in config.lengths[1:]:
        result, recomputed = _evaluate_length(
            values, stats, store, config, length, engine=engine, n_jobs=n_jobs
        )
        total_recomputed += recomputed
        total_non_valid += result.pruning.num_non_valid
        length_results[length] = result
        valmap.update_from_pairs(result.motifs, both_members=config.update_both_members)
        if length != config.min_length:
            stats.forget(length)

    elapsed = time.perf_counter() - started
    _VALMOD_RUNS.inc()
    _VALMOD_LENGTHS.inc(len(length_results))
    _VALMOD_RECOMPUTED.inc(total_recomputed)
    _VALMOD_NON_VALID.inc(total_non_valid)
    publish_pruning_metrics(length_results)
    if obs.tracing_active():
        obs.record_span(
            "valmod.run",
            started_wall,
            elapsed,
            lengths=len(length_results),
            recomputed=total_recomputed,
        )
    return ValmodResult(
        config=config,
        series_name=series_name,
        series_length=int(values.size),
        base_profile=base_profile,
        length_results=length_results,
        valmap=valmap,
        elapsed_seconds=elapsed,
        extra={"total_recomputed_profiles": float(total_recomputed)},
    )


def _recompute_exact(
    values: np.ndarray,
    stats: SlidingStats,
    length: int,
    radius: int,
    offsets: np.ndarray,
    engine: object | None,
    n_jobs: int | None,
) -> List[np.ndarray]:
    """Exact distance profiles of ``offsets``, batched through the engine.

    Each profile is one independent MASS call; with an engine configured
    they are dispatched as one batch of single-offset
    :class:`~repro.engine.batch.ProfileJob` s (the ROADMAP's "parallelise
    VALMOD's per-length recomputed distance profiles" follow-up).  The
    serial fallback keeps the original one-call-at-a-time oracle path.
    """
    if engine is None or offsets.size == 1:
        return [
            distance_profile(
                values, int(offset), length, stats=stats, exclusion_radius=radius
            )
            for offset in offsets.tolist()
        ]
    from repro.engine.batch import ProfileJob, compute_profiles

    jobs = [
        ProfileJob(values, window=length, query_offset=int(offset), exclusion_radius=radius)
        for offset in offsets.tolist()
    ]
    return [
        outcome.unwrap()
        for outcome in compute_profiles(jobs, executor=engine, n_jobs=n_jobs)
    ]


def _evaluate_length(
    values: np.ndarray,
    stats: SlidingStats,
    store: PartialProfileStore,
    config: ValmodConfig,
    length: int,
    *,
    engine: object | None = None,
    n_jobs: int | None = None,
) -> tuple[LengthResult, int]:
    """Top-k motif pairs of one length, recomputing profiles only when required.

    With an engine configured, a non-valid candidate triggers the batched
    recomputation of the non-exact offsets whose selection value is below
    the smallest certified-exact value: each of those offsets would become
    the argmin (and be recomputed serially) before any exact candidate can
    be selected, so recomputing them together preserves exactness while
    turning the per-length recomputations into one engine batch.  The batch
    is capped per round (smallest bounds first; the argmin candidate is the
    global minimum, hence always included) so a length where pruning barely
    certified anything cannot degenerate into recomputing the whole profile
    set in one go.  The batch may recompute profiles the serial loop would
    have skipped (when a freshly recomputed pair's exclusion zone wipes a
    candidate out), which only affects the ``num_recomputed`` counter,
    never the reported pairs.
    """
    evaluation = store.evaluate(length)
    radius = default_exclusion_radius(length, config.exclusion_factor)

    exact = np.array(evaluation.valid, dtype=bool)
    min_distances = np.array(evaluation.min_distances, dtype=np.float64)
    nearest = np.array(evaluation.min_indices, dtype=np.int64)
    # Selection values: exact minima where certified, lower bounds elsewhere.
    working = np.where(exact, min_distances, evaluation.max_lower_bounds)

    pairs: List[MotifPair] = []
    recomputed = 0
    while len(pairs) < config.top_k:
        candidate = int(np.argmin(working))
        if not np.isfinite(working[candidate]):
            break
        if not exact[candidate]:
            if engine is not None:
                exact_working = working[exact]
                min_exact = (
                    float(np.min(exact_working)) if exact_working.size else np.inf
                )
                chunk = np.flatnonzero(
                    ~exact & np.isfinite(working) & (working <= min_exact)
                )
                cap = max(16, 4 * config.top_k)
                if chunk.size > cap:
                    smallest = np.argpartition(working[chunk], cap - 1)[:cap]
                    chunk = chunk[smallest]
            else:
                chunk = np.array([candidate], dtype=np.int64)
            profiles = _recompute_exact(
                values, stats, length, radius, chunk, engine, n_jobs
            )
            for offset, profile in zip(chunk.tolist(), profiles):
                best = int(np.argmin(profile))
                if np.isfinite(profile[best]):
                    min_distances[offset] = float(profile[best])
                    nearest[offset] = best
                else:
                    min_distances[offset] = np.inf
                    nearest[offset] = -1
                exact[offset] = True
                working[offset] = min_distances[offset]
                recomputed += 1
            continue
        if nearest[candidate] < 0:
            apply_exclusion_zone(working, candidate, radius)
            continue
        pairs.append(
            MotifPair(
                distance=float(min_distances[candidate]),
                offset_a=candidate,
                offset_b=int(nearest[candidate]),
                window=length,
            )
        )
        apply_exclusion_zone(working, candidate, radius)
        apply_exclusion_zone(working, int(nearest[candidate]), radius)

    pruning = PruningStats(
        length=length,
        num_profiles=int(evaluation.valid.size),
        num_valid=evaluation.num_valid,
        num_non_valid=evaluation.num_non_valid,
        num_recomputed=recomputed,
        min_lb_abs=evaluation.min_lb_abs,
    )
    return LengthResult(length=length, motifs=pairs, pruning=pruning), recomputed
