"""Unified analysis API: one request/result surface over every algorithm.

The package groups three layers:

* :mod:`repro.api.session` — the :class:`Analysis` session object
  (``repro.analyze(series)``) with per-series shared state, cross-call
  result caching and the session-wide :class:`EngineConfig`;
* :mod:`repro.api.registry` — the string-keyed algorithm registry with
  capability metadata every dispatch funnels through;
* :mod:`repro.api.requests` — the JSON-serialisable
  :class:`AnalysisRequest` / :class:`AnalysisResult` layer for
  service-style batch submission (file round-trips live in
  :mod:`repro.io.serialization`).
"""

from repro.api.cache import (
    CacheConfig,
    LRUResultCache,
    PersistentResultCache,
    series_digest,
)
from repro.api.registry import (
    AlgorithmSpec,
    algorithm_keys,
    capabilities,
    iter_specs,
    registered_kinds,
    resolve_algorithm,
)
from repro.api.requests import (
    AnalysisRequest,
    AnalysisResult,
    EnvelopeRangeResult,
    canonical_cache_key,
)
from repro.api.session import Analysis, EngineConfig, analyze

__all__ = [
    "AlgorithmSpec",
    "Analysis",
    "AnalysisRequest",
    "AnalysisResult",
    "EnvelopeRangeResult",
    "CacheConfig",
    "EngineConfig",
    "LRUResultCache",
    "PersistentResultCache",
    "algorithm_keys",
    "analyze",
    "canonical_cache_key",
    "capabilities",
    "iter_specs",
    "registered_kinds",
    "resolve_algorithm",
    "series_digest",
]
