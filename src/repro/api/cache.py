"""Bounded and persistent result caches behind the :class:`~repro.api.Analysis` session.

PR 2's session cache was a plain dictionary: safe for a notebook, unsafe for
a long-lived service answering arbitrary traffic (it grows without bound) and
wasteful across processes (results die with the session).  This module
provides the two replacements:

* :class:`LRUResultCache` — an in-memory least-recently-used cache with
  **both** entry-count and byte-size accounting, so a session holds at most
  ``max_entries`` envelopes occupying at most ``max_bytes`` of serialised
  result data;
* :class:`PersistentResultCache` — a cross-session spill directory keyed by
  ``(series_digest, canonical_request_key)``: a fresh process answering the
  same series finds the prior process's envelopes on disk and skips the
  computation.  Spill files travel through :mod:`repro.io.serialization`
  (plain JSON, human-inspectable); a corrupted or stale file is treated as a
  miss, never as an error.

:class:`CacheConfig` bundles the knobs the session (and the service layer on
top of it) exposes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.exceptions import InvalidParameterError, SerializationError

_CACHE_METRICS = obs.scope("cache")
_LRU_EVICTIONS = _CACHE_METRICS.counter("lru_evictions")
_PERSISTENT_LOADS = _CACHE_METRICS.counter("persistent_loads")
_PERSISTENT_STORES = _CACHE_METRICS.counter("persistent_stores")

__all__ = [
    "CacheConfig",
    "LRUResultCache",
    "PersistentResultCache",
    "series_digest",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MAX_BYTES",
]

#: Default entry bound of a session's result cache.  256 envelopes is far
#: beyond any interactive workload while keeping a service session bounded.
DEFAULT_MAX_ENTRIES = 256

#: Default byte bound of a session's result cache (serialised size).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


def series_digest(values) -> str:
    """Content digest (sha1 hex) of a series' float64 values.

    This is the identity the persistent cache and the service layer key
    sessions by: two series with identical values share one digest, whatever
    their name or container type.
    """
    array = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    return hashlib.sha1(array.tobytes()).hexdigest()


@dataclass(frozen=True)
class CacheConfig:
    """Result-cache configuration carried by a session.

    Attributes
    ----------
    max_entries:
        Most envelopes the in-memory cache retains (LRU eviction beyond it).
    max_bytes:
        Most serialised bytes the in-memory cache retains.  An envelope
        larger than the whole budget is returned to the caller but never
        cached.
    persist_dir:
        Optional spill directory for the cross-session persistent cache;
        ``None`` (default) disables persistence.
    """

    max_entries: int = DEFAULT_MAX_ENTRIES
    max_bytes: int = DEFAULT_MAX_BYTES
    persist_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if int(self.max_entries) < 1:
            raise InvalidParameterError(
                f"max_entries must be >= 1, got {self.max_entries}"
            )
        if int(self.max_bytes) < 1:
            raise InvalidParameterError(f"max_bytes must be >= 1, got {self.max_bytes}")

    def as_dict(self) -> dict:
        """JSON-ready form (paths degrade to strings)."""
        return {
            "max_entries": int(self.max_entries),
            "max_bytes": int(self.max_bytes),
            "persist_dir": None if self.persist_dir is None else str(self.persist_dir),
        }


class LRUResultCache:
    """Least-recently-used cache of :class:`~repro.api.requests.AnalysisResult`.

    Bounded on two axes — entry count and total serialised bytes — and
    thread-safe (the service layer's worker pool reads and writes sessions
    from executor threads).  ``get`` promotes, ``put`` evicts from the cold
    end until both bounds hold again.
    """

    def __init__(self, max_entries: int, max_bytes: int) -> None:
        if max_entries < 1:
            raise InvalidParameterError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise InvalidParameterError(f"max_bytes must be >= 1, got {max_bytes}")
        self._max_entries = int(max_entries)
        self._max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, Tuple[object, int]]" = OrderedDict()
        self._total_bytes = 0
        self._evictions = 0
        self._lock = threading.Lock()

    @property
    def max_entries(self) -> int:
        """The entry bound."""
        return self._max_entries

    @property
    def max_bytes(self) -> int:
        """The byte bound."""
        return self._max_bytes

    @property
    def total_bytes(self) -> int:
        """Serialised bytes currently retained."""
        with self._lock:
            return self._total_bytes

    @property
    def evictions(self) -> int:
        """Number of entries evicted so far (bound pressure, not ``clear``)."""
        with self._lock:
            return self._evictions

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        # Membership tests do not promote: `run_many` probes keys it may
        # never execute, which must not perturb the eviction order.
        with self._lock:
            return key in self._entries

    def keys(self) -> list:
        """Cached keys from least- to most-recently used (for tests/stats)."""
        with self._lock:
            return list(self._entries)

    def get(self, key: str):
        """Return the cached result (promoting it) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[0]

    def put(self, key: str, result, size_bytes: int) -> bool:
        """Insert ``result`` under ``key``; returns False when it cannot fit.

        An entry larger than the whole byte budget is rejected outright
        (caching it would evict everything else for a single slot).
        """
        size_bytes = int(size_bytes)
        if size_bytes < 0:
            raise InvalidParameterError(f"size_bytes must be >= 0, got {size_bytes}")
        if size_bytes > self._max_bytes:
            return False
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._total_bytes -= previous[1]
            self._entries[key] = (result, size_bytes)
            self._total_bytes += size_bytes
            while len(self._entries) > self._max_entries or (
                self._total_bytes > self._max_bytes
            ):
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._total_bytes -= evicted_size
                self._evictions += 1
                _LRU_EVICTIONS.inc()
            return True

    def clear(self) -> None:
        """Drop every entry (does not count as eviction pressure)."""
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0

    def info(self) -> dict:
        """Bounds and occupancy, for :meth:`repro.api.Analysis.cache_info`."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._total_bytes,
                "max_entries": self._max_entries,
                "max_bytes": self._max_bytes,
                "evictions": self._evictions,
            }


class PersistentResultCache:
    """Cross-session result cache: envelopes spilled to disk as JSON.

    Layout: ``root/<digest[:2]>/<digest>/<sha1(canonical_key)>.json`` — one
    directory per series content digest, one file per canonical request key.
    Every file records the full canonical key alongside the envelope, so a
    (vanishingly unlikely) filename-hash collision or a stale file from an
    older envelope format reads back as a **miss**, never as a wrong result.
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._lock = threading.Lock()

    @property
    def root(self) -> Path:
        """The spill directory."""
        return self._root

    def path_for(self, digest: str, key: str) -> Path:
        """Spill path of one ``(series_digest, canonical_request_key)`` slot."""
        key_hash = hashlib.sha1(key.encode("utf-8")).hexdigest()
        return self._root / digest[:2] / digest / f"{key_hash}.json"

    def valmod_sidecar_for(self, digest: str, key: str) -> Path:
        """Sidecar path holding the full ``ValmodResult`` of one slot.

        The envelope only round-trips the cross-algorithm comparable view;
        VALMOD's richer in-process result (VALMAP, checkpoints, pruning
        detail, base profile) spills next to it via
        :func:`repro.io.serialization.save_result` so a hit can rehydrate
        losslessly instead of degrading to an
        :class:`~repro.api.requests.EnvelopeRangeResult`.
        """
        path = self.path_for(digest, key)
        return path.with_name(f"{path.stem}.valmod.json")

    def load(self, digest: str, key: str) -> Optional[Tuple[object, int]]:
        """Return ``(envelope, file_size_bytes)`` for the slot, or ``None``.

        Missing, unreadable, corrupted and key-mismatched files all count as
        misses; corrupted files are removed best-effort so the slot heals on
        the next store.  The file size rides along so callers promoting the
        envelope into an :class:`LRUResultCache` do not have to re-serialise
        a payload that was just parsed from disk.
        """
        from repro.io.serialization import load_cache_entry

        path = self.path_for(digest, key)
        if not path.is_file():
            return None
        try:
            size = path.stat().st_size
            stored_key, result = load_cache_entry(path)
        except (OSError, SerializationError):
            with self._lock:
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        if stored_key != key:
            return None
        _PERSISTENT_LOADS.inc()
        return self._rehydrate_valmod(digest, key, result), int(size)

    def _rehydrate_valmod(self, digest: str, key: str, result):
        """Swap a VALMOD envelope view for the sidecar's full result.

        Any failure — missing sidecar, corruption, a result that does not
        match the envelope it rides with — degrades to the envelope view
        the caller already has.  A sidecar that is outright corrupt is
        removed best-effort so the slot heals on the next store, but an
        **older-format** sidecar (parseable, carries ``length_results``,
        merely missing optional fields such as ``base_profile``) is kept on
        disk: it still describes the same motifs, and
        :meth:`repro.index.MotifIndex.backfill` can walk it.
        """
        if getattr(result, "kind", None) != "motifs" or getattr(
            result, "algo", None
        ) != "valmod":
            return result
        from dataclasses import replace

        from repro.core.results import ValmodResult
        from repro.io.serialization import load_result

        sidecar = self.valmod_sidecar_for(digest, key)
        if not sidecar.is_file():
            return result
        try:
            payload = load_result(sidecar)
        except SerializationError:
            payload = None
        try:
            full = ValmodResult.from_dict(payload)
        except (SerializationError, KeyError, TypeError, ValueError):
            if isinstance(payload, dict) and "length_results" in payload:
                return result
            with self._lock:
                try:
                    sidecar.unlink()
                except OSError:
                    pass
            return result
        # A sidecar that survived a crash between the two writes could be
        # stale relative to the envelope; the evaluated lengths are a cheap
        # fingerprint of "same run".
        if full.lengths != sorted(result.payload.lengths):
            return result
        return replace(result, payload=full)

    def store(
        self, digest: str, key: str, result, *, result_dict: dict | None = None
    ) -> Optional[Path]:
        """Spill one envelope; returns the path, or ``None`` when it cannot
        be serialised or written (the cache is best-effort by design).

        ``result_dict`` optionally passes an already-computed
        ``result.as_dict()`` so callers that serialised the envelope for
        size accounting do not pay the conversion twice.
        """
        from repro.core.results import ValmodResult
        from repro.io.serialization import save_cache_entry, save_result

        path = self.path_for(digest, key)
        try:
            with self._lock:
                written = save_cache_entry(result, key, path, result_dict=result_dict)
                if isinstance(getattr(result, "payload", None), ValmodResult):
                    # The envelope lands first: a crash here leaves a slot
                    # that degrades to the envelope view, never one whose
                    # sidecar disagrees with a newer envelope.
                    try:
                        save_result(
                            result.payload, self.valmod_sidecar_for(digest, key)
                        )
                    except SerializationError:
                        pass
                if written is not None:
                    _PERSISTENT_STORES.inc()
                return written
        except SerializationError:
            return None
