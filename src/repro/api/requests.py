"""Typed request / result layer of the unified analysis API.

An :class:`AnalysisRequest` names one computation — a *kind* (what family of
question: ``matrix_profile``, ``motifs``, ``discords``, ``pan_profile``,
``ab_join``, ``mpdist``), an optional *algo* (which registered algorithm
answers it) and a parameter mapping.  An :class:`AnalysisResult` is the
common envelope every computation returns: the request echo, timing, series
identity and the algorithm's native payload, plus uniform accessors over the
payload shapes.

Both sides are JSON-serialisable (``as_dict`` / ``from_dict`` here, file
round-trips through :mod:`repro.io.serialization`), which is what makes the
session usable as a service surface: a client can POST a request document,
the server replays it through :meth:`repro.api.Analysis.run`, and the result
document travels back.

For the ``motifs`` kind the envelope serialises the cross-algorithm
comparable view (a :class:`~repro.baselines.base.RangeDiscoveryResult`):
VALMOD's full in-process result object (VALMAP, checkpoints, pruning detail)
does not round-trip through the envelope — persist it with
:func:`repro.io.serialization.save_result` when the detail matters.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

import numpy as np

from repro.baselines.base import RangeDiscoveryResult
from repro.core.discords import VariableLengthDiscord
from repro.core.results import ValmodResult
from repro.core.skimp import PanMatrixProfile
from repro.exceptions import InvalidParameterError, SerializationError
from repro.matrix_profile.ab_join import JoinProfile
from repro.matrix_profile.profile import MatrixProfile, MotifPair
from repro.series.dataseries import DataSeries

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "EnvelopeRangeResult",
    "canonical_cache_key",
]


class EnvelopeRangeResult(RangeDiscoveryResult):
    """A ``motifs`` payload rehydrated from a serialised envelope.

    A VALMOD computation produces the full in-process
    :class:`~repro.core.results.ValmodResult` (VALMAP, checkpoints, pruning
    detail), but the envelope only round-trips the cross-algorithm
    comparable view.  When such an envelope comes back — a persistent-spill
    hit from an earlier process, a service response, a loaded result file —
    callers written against ``ValmodResult`` would previously get a bare
    ``AttributeError`` with no hint of *why* the attribute vanished.  This
    marker subclass behaves exactly like its parent for everything the view
    actually carries and turns unknown-attribute access into a loud,
    explanatory error.
    """

    def __getattr__(self, name: str):
        # Only reached when normal lookup fails, i.e. for attributes of the
        # richer in-process result types the envelope does not carry.
        raise AttributeError(
            f"{name!r} is not available: this motifs result was rehydrated "
            "from a serialised envelope (persistent cache, service response "
            "or result file) and carries only the cross-algorithm "
            "RangeDiscoveryResult view.  Recompute in-process (e.g. "
            "Analysis.run(request, cache=False) or repro.valmod) when the "
            "full ValmodResult is needed."
        )


def _jsonable(value: Any) -> Any:
    """Convert a parameter value to a JSON-serialisable equivalent.

    Arrays and :class:`DataSeries` become lists (so an ``ab_join`` request
    carrying the other series still serialises); numpy scalars become Python
    scalars; tuples become lists.  Anything else unserialisable raises.
    """
    if isinstance(value, DataSeries):
        return value.values.tolist()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if hasattr(value, "values") and isinstance(
        getattr(value, "values"), np.ndarray
    ):  # an Analysis session standing in for its series
        return value.values.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SerializationError(
        f"request parameter of type {type(value).__name__} is not JSON-serialisable"
    )


def _digest(value: Any) -> Any:
    """Like :func:`_jsonable` but collapses bulky arrays to a content hash.

    Used for cache keys, where only identity matters: hashing a series is
    cheaper than embedding a million floats in every key.
    """
    if isinstance(value, DataSeries) or (
        hasattr(value, "values") and isinstance(getattr(value, "values"), np.ndarray)
    ):
        return {"__series__": hashlib.sha1(value.values.tobytes()).hexdigest()}
    if isinstance(value, np.ndarray):
        return {"__array__": hashlib.sha1(np.ascontiguousarray(value).tobytes()).hexdigest()}
    if isinstance(value, (list, tuple)):
        return [_digest(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _digest(item) for key, item in value.items()}
    return _jsonable(value)


@dataclass(frozen=True)
class AnalysisRequest:
    """One unit of analysis work addressed to an :class:`repro.api.Analysis`.

    Attributes
    ----------
    kind:
        The computation family (``"matrix_profile"``, ``"motifs"``, ...).
    algo:
        Registry key of the algorithm; ``None`` selects the kind's default.
    params:
        Keyword arguments forwarded to the algorithm runner.
    """

    kind: str
    algo: str | None = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise InvalidParameterError("an AnalysisRequest needs a non-empty kind")
        object.__setattr__(self, "params", dict(self.params))

    def cache_key(self) -> str | None:
        """Canonical key for the session result cache.

        Returns ``None`` when any parameter resists canonicalisation (an
        executor instance, an open generator, ...) — such requests simply
        bypass the cache.
        """
        try:
            payload = {
                "kind": self.kind,
                "algo": self.algo,
                "params": _digest(self.params),
            }
            return json.dumps(payload, sort_keys=True)
        except (SerializationError, TypeError, ValueError):
            return None

    def as_dict(self) -> dict:
        """Plain-dict (JSON-ready) form; raises on unserialisable parameters."""
        return {
            "kind": self.kind,
            "algo": self.algo,
            "params": _jsonable(self.params),
        }

    def to_json(self) -> str:
        """The request as a JSON document."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnalysisRequest":
        """Rebuild a request from :meth:`as_dict` output."""
        try:
            return cls(
                kind=str(payload["kind"]),
                algo=payload.get("algo"),
                params=dict(payload.get("params", {})),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"not a valid analysis request: {error}") from error

    @classmethod
    def from_json(cls, text: str) -> "AnalysisRequest":
        """Rebuild a request from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"not a valid analysis request: {error}") from error
        if not isinstance(payload, dict):
            raise SerializationError("not a valid analysis request: expected an object")
        return cls.from_dict(payload)


def canonical_cache_key(spec, request: "AnalysisRequest") -> str | None:
    """Cache key of ``request`` under the *resolved* algorithm spec.

    Aliases and the kind's default spelling share one cache slot: the key is
    always computed with the spec's canonical ``key`` as the algo.  Returns
    ``None`` when the parameters resist canonicalisation (such requests
    bypass every cache).  Shared by the session cache, the persistent spill
    and the service layer so all three agree on what "the same request" is.
    """
    if request.algo == spec.key:
        return request.cache_key()
    return AnalysisRequest(
        kind=spec.kind, algo=spec.key, params=request.params
    ).cache_key()


def _payload_as_dict(kind: str, payload: Any) -> tuple[str, Any]:
    """Serialise a result payload to ``(payload_type, jsonable)``."""
    if isinstance(payload, ValmodResult):
        # The envelope carries the cross-algorithm comparable view; the
        # full ValmodResult persists via repro.io.save_result instead.
        return ("range_result", _range_result_from_valmod(payload).as_dict())
    if isinstance(payload, RangeDiscoveryResult):
        return ("range_result", payload.as_dict())
    if isinstance(payload, MatrixProfile):
        return ("matrix_profile", payload.as_dict())
    if isinstance(payload, PanMatrixProfile):
        serialised = payload.as_dict()
        serialised["normalized_profiles"] = [
            [None if value != value else value for value in row]
            for row in serialised["normalized_profiles"]
        ]
        return ("pan_profile", serialised)
    if isinstance(payload, JoinProfile):
        return ("join_profile", payload.as_dict())
    if isinstance(payload, (int, float)):
        return ("scalar", float(payload))
    if isinstance(payload, list) and all(
        isinstance(item, VariableLengthDiscord) for item in payload
    ):
        return ("discords", [item.as_dict() for item in payload])
    raise SerializationError(
        f"cannot serialise a {kind!r} payload of type {type(payload).__name__}"
    )


def _payload_from_dict(payload_type: str, data: Any) -> Any:
    """Inverse of :func:`_payload_as_dict`."""
    if payload_type == "matrix_profile":
        return MatrixProfile(
            distances=np.asarray(data["distances"], dtype=np.float64),
            indices=np.asarray(data["indices"], dtype=np.int64),
            window=int(data["window"]),
            exclusion_radius=int(data["exclusion_radius"]),
        )
    if payload_type == "range_result":
        return RangeDiscoveryResult(
            algorithm=str(data["algorithm"]),
            motifs_by_length={
                int(length): [
                    MotifPair(
                        distance=float(pair["distance"]),
                        offset_a=int(pair["offset_a"]),
                        offset_b=int(pair["offset_b"]),
                        window=int(pair["window"]),
                    )
                    for pair in pairs
                ]
                for length, pairs in data["motifs_by_length"].items()
            },
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            extra=dict(data.get("extra", {})),
        )
    if payload_type == "pan_profile":
        normalized = np.asarray(
            [
                [np.nan if value is None else float(value) for value in row]
                for row in data["normalized_profiles"]
            ],
            dtype=np.float64,
        )
        return PanMatrixProfile(
            lengths=np.asarray(data["lengths"], dtype=np.int64),
            normalized_profiles=normalized,
            index_profiles=np.asarray(data["index_profiles"], dtype=np.int64),
            min_length=int(data["min_length"]),
            max_length=int(data["max_length"]),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )
    if payload_type == "join_profile":
        return JoinProfile(
            distances=np.asarray(data["distances"], dtype=np.float64),
            indices=np.asarray(data["indices"], dtype=np.int64),
            window=int(data["window"]),
        )
    if payload_type == "scalar":
        return float(data)
    if payload_type == "discords":
        return [VariableLengthDiscord(**item) for item in data]
    raise SerializationError(f"unknown analysis payload type {payload_type!r}")


def _range_result_from_valmod(result: ValmodResult) -> RangeDiscoveryResult:
    """The cross-algorithm comparable view of a VALMOD run."""
    return RangeDiscoveryResult(
        algorithm="valmod",
        motifs_by_length={
            length: list(result.length_results[length].motifs)
            for length in result.lengths
        },
        elapsed_seconds=result.elapsed_seconds,
        extra={
            **result.pruning_summary(),
            "total_recomputed_profiles": result.extra.get(
                "total_recomputed_profiles", 0.0
            ),
        },
    )


@dataclass(frozen=True)
class AnalysisResult:
    """The common envelope every session computation returns.

    Attributes
    ----------
    kind, algo, params:
        Echo of the resolved request (``algo`` is always the canonical
        registry key, never an alias).
    series_name, series_length:
        Identity of the analysed series.
    elapsed_seconds:
        Wall-clock time of the computation (``0.0`` on a cache hit — the
        cached envelope, including its original timing, is returned as-is).
    payload:
        The algorithm's native result object (:class:`MatrixProfile`,
        :class:`~repro.core.results.ValmodResult`, ...).
    """

    kind: str
    algo: str
    params: Mapping[str, Any]
    series_name: str
    series_length: int
    elapsed_seconds: float
    payload: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------ #
    # uniform accessors
    # ------------------------------------------------------------------ #
    @property
    def value(self) -> Any:
        """The native payload (alias kept short for call-site readability)."""
        return self.payload

    @property
    def is_envelope_view(self) -> bool:
        """True when the payload is a rehydrated envelope view, not the
        in-process result object (see :class:`EnvelopeRangeResult`)."""
        return isinstance(self.payload, EnvelopeRangeResult)

    def profile(self) -> MatrixProfile:
        """The payload as a :class:`MatrixProfile` (``matrix_profile`` kind)."""
        if not isinstance(self.payload, MatrixProfile):
            raise InvalidParameterError(
                f"a {self.kind!r} result holds no matrix profile"
            )
        return self.payload

    def range_result(self) -> RangeDiscoveryResult:
        """The payload as the cross-algorithm motif view (``motifs`` kind)."""
        if isinstance(self.payload, RangeDiscoveryResult):
            return self.payload
        if isinstance(self.payload, ValmodResult):
            return _range_result_from_valmod(self.payload)
        raise InvalidParameterError(
            f"a {self.kind!r} result holds no per-length motif listing"
        )

    def motifs_by_length(self) -> Dict[int, List[MotifPair]]:
        """Per-length motif pairs, uniform across motif algorithms."""
        view = self.range_result()
        return {length: view.motifs_at(length) for length in view.lengths}

    def best_motif(self) -> MotifPair:
        """The best pair across lengths, by length-normalised distance."""
        return self.range_result().best_overall()

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """Plain-dict (JSON-ready) form of the envelope."""
        payload_type, payload = _payload_as_dict(self.kind, self.payload)
        return {
            "kind": self.kind,
            "algo": self.algo,
            "params": _jsonable(self.params),
            "series_name": self.series_name,
            "series_length": int(self.series_length),
            "elapsed_seconds": float(self.elapsed_seconds),
            "payload_type": payload_type,
            "payload": payload,
        }

    def to_json(self) -> str:
        """The envelope as a JSON document."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnalysisResult":
        """Rebuild an envelope from :meth:`as_dict` output.

        A ``motifs``/``valmod`` payload is tagged as an
        :class:`EnvelopeRangeResult`: VALMOD is the one algorithm whose
        in-process result is richer than what the envelope round-trips, so
        rehydrated hits must fail loudly when callers reach for the missing
        ``ValmodResult`` fields.
        """
        try:
            kind = str(payload["kind"])
            algo = str(payload["algo"])
            native = _payload_from_dict(str(payload["payload_type"]), payload["payload"])
            if (
                kind == "motifs"
                and algo == "valmod"
                and isinstance(native, RangeDiscoveryResult)
            ):
                native = EnvelopeRangeResult(
                    algorithm=native.algorithm,
                    motifs_by_length=native.motifs_by_length,
                    elapsed_seconds=native.elapsed_seconds,
                    extra=native.extra,
                )
            return cls(
                kind=kind,
                algo=algo,
                params=dict(payload.get("params", {})),
                series_name=str(payload.get("series_name", "series")),
                series_length=int(payload.get("series_length", 0)),
                elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
                payload=native,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"not a valid analysis result: {error}") from error

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResult":
        """Rebuild an envelope from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"not a valid analysis result: {error}") from error
        if not isinstance(payload, dict):
            raise SerializationError("not a valid analysis result: expected an object")
        return cls.from_dict(payload)
