"""The :class:`Analysis` session — one surface over every algorithm.

The flat entry points (``repro.stomp``, ``repro.valmod``, ``repro.skimp``,
...) each validate the series and derive sliding statistics per call.  A
production service answering many questions about the *same* series should
pay those costs once; the session object does exactly that:

* the series is normalised and validated **once** at construction
  (:class:`~repro.series.DataSeries`, numpy array or plain list — all
  accepted uniformly);
* one :class:`~repro.stats.sliding.SlidingStats` (prefix sums + per-window
  mean/std cache) is shared across every computation;
* the base FFT products STOMP needs (``QT[0, j]``) are memoized per window
  length;
* every completed computation is cached under its canonical request key in a
  bounded LRU cache (entry-count **and** byte-size accounting, see
  :class:`~repro.api.cache.LRUResultCache`), so repeating a call is a
  dictionary hit (``benchmarks/test_api_session_cache.py`` measures the
  speedup) while long-lived sessions stay bounded;
* with a :class:`~repro.api.cache.CacheConfig` ``persist_dir``, envelopes
  additionally spill to disk keyed by ``(series_digest, canonical request
  key)`` — a fresh process answering the same series reuses prior work;
* one :class:`EngineConfig` carries the execution knobs for every
  engine-aware algorithm instead of per-call ``engine=`` / ``n_jobs=``
  arguments, and multi-request submissions batch through
  :func:`repro.engine.batch.compute_profiles`.

Typical usage::

    import repro

    session = repro.analyze(series)
    profile = session.matrix_profile(window=64).profile()
    motifs = session.motifs(50, 200, method="valmod").best_motif()
    pan = session.pan_profile(50, 200).value
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro import obs
from repro.api.cache import (
    CacheConfig,
    LRUResultCache,
    PersistentResultCache,
    series_digest,
)
from repro.api.registry import resolve_algorithm
from repro.api.requests import AnalysisRequest, AnalysisResult, canonical_cache_key
from repro.engine.executor import Executor
from repro.engine.shm import SharedSegmentPool
from repro.exceptions import InvalidParameterError, SerializationError
from repro.matrix_profile.kernels import validate_kernel
from repro.series.dataseries import DataSeries, as_series
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats

__all__ = ["EngineConfig", "CacheConfig", "Analysis", "analyze"]

_ENGINE_NAMES = ("serial", "parallel", "auto")

_CACHE_METRICS = obs.scope("cache")
_CACHE_MEMORY_HITS = _CACHE_METRICS.counter("memory_hits")
_CACHE_PERSISTENT_HITS = _CACHE_METRICS.counter("persistent_hits")
_CACHE_MISSES = _CACHE_METRICS.counter("misses")
_SESSION_METRICS = obs.scope("session")
_SESSION_RUNS = _SESSION_METRICS.counter("runs")
_SESSION_COMPUTE_SECONDS = _SESSION_METRICS.histogram("compute_seconds")


@dataclass(frozen=True)
class EngineConfig:
    """Execution configuration carried by a session.

    Attributes
    ----------
    executor:
        ``None`` (default; plain serial oracle paths), ``"serial"``,
        ``"parallel"``, ``"auto"`` or an
        :class:`~repro.engine.executor.Executor` instance.  Anything but
        ``None`` routes the engine-aware algorithms through
        :mod:`repro.engine`.
    n_jobs:
        Worker processes for ``"parallel"`` / ``"auto"``.
    block_size:
        Row-block size for the partitioned profile computations.
    kernel:
        Sweep kernel for the STOMP-shaped computations — ``None``
        (default; resolves per process via ``REPRO_KERNEL`` / auto),
        ``"auto"``, ``"oracle"``, ``"numpy"`` or ``"native"``; see
        :mod:`repro.matrix_profile.kernels`.  Unlike ``executor``, the
        kernel applies even to the plain serial paths.
    """

    executor: object | None = None
    n_jobs: int | None = None
    block_size: int | None = None
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.executor is not None and not isinstance(self.executor, Executor):
            if self.executor not in _ENGINE_NAMES:
                raise InvalidParameterError(
                    f"unknown engine executor {self.executor!r}; expected one of "
                    f"{list(_ENGINE_NAMES)} or an Executor instance"
                )
        if self.n_jobs is not None and int(self.n_jobs) < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.block_size is not None and int(self.block_size) < 1:
            raise InvalidParameterError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        validate_kernel(self.kernel)

    @property
    def enabled(self) -> bool:
        """True when the engine-aware algorithms should route through the engine."""
        return self.executor is not None

    def as_dict(self) -> dict:
        """JSON-ready form (executor instances degrade to their name)."""
        executor = self.executor
        if isinstance(executor, Executor):
            executor = executor.name
        return {
            "executor": executor,
            "n_jobs": self.n_jobs,
            "block_size": self.block_size,
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        return cls(
            executor=payload.get("executor"),
            n_jobs=payload.get("n_jobs"),
            block_size=payload.get("block_size"),
            kernel=payload.get("kernel"),
        )


class Analysis:
    """An analysis session over one data series.

    Parameters
    ----------
    series:
        :class:`~repro.series.DataSeries`, numpy array, plain list — or a
        content digest string resolved through ``store``.
    name:
        Optional name override (reports, result envelopes).
    engine:
        Session-wide :class:`EngineConfig`; also accepts the shorthand
        strings ``"serial"`` / ``"parallel"`` / ``"auto"`` or an
        :class:`~repro.engine.executor.Executor` instance.
    cache_config:
        Session-wide :class:`~repro.api.cache.CacheConfig`: LRU bounds of
        the in-memory result cache (entries and serialised bytes) and the
        optional cross-session spill directory.  Defaults to a bounded
        in-memory cache with no persistence.
    store:
        Optional :class:`repro.store.SeriesStore` used (only) to resolve a
        digest-string ``series``; the values arrive memory-mapped from the
        catalog blob.
    index:
        Optional :class:`repro.index.MotifIndex`: every **computed** (non
        cache-hit) result is flattened into catalog rows automatically.
        Ingest is best-effort by the index's own contract — a broken catalog
        warns and degrades, it never fails the computation.
    """

    def __init__(
        self,
        series,
        *,
        name: str | None = None,
        engine: "EngineConfig | str | Executor | None" = None,
        cache_config: CacheConfig | None = None,
        store=None,
        index=None,
    ) -> None:
        self._blob_handle = None
        if isinstance(series, str):
            digest = series
            series = self._resolve_digest(digest, store)
            # Remember the store blob behind this series: engine batches can
            # then ship a ~100-byte BlobHandle to process workers instead of
            # pickling (or shm-repacking) the O(n) values.
            handle_of = getattr(store, "handle", None)
            if callable(handle_of):
                self._blob_handle = handle_of(digest)
        self._series = as_series(series, name=name)
        if engine is None:
            engine = EngineConfig()
        elif not isinstance(engine, EngineConfig):
            engine = EngineConfig(executor=engine)
        self._engine = engine
        if cache_config is None:
            cache_config = CacheConfig()
        self._cache_config = cache_config
        self._stats: SlidingStats | None = None
        self._base_qt: Dict[int, np.ndarray] = {}
        self._results = LRUResultCache(
            cache_config.max_entries, cache_config.max_bytes
        )
        self._persistent = (
            None
            if cache_config.persist_dir is None
            else PersistentResultCache(cache_config.persist_dir)
        )
        self._index = index
        self._digest: str | None = None
        self._segments: SharedSegmentPool | None = None
        self._closed = False
        self._hits = 0
        self._misses = 0
        self._persistent_hits = 0

    @staticmethod
    def _resolve_digest(digest: str, store) -> DataSeries:
        """Resolve a content digest through a :class:`repro.store.SeriesStore`."""
        if store is None:
            raise InvalidParameterError(
                "a series digest was passed but no store= to resolve it against; "
                "open one with repro.store.SeriesStore(root)"
            )
        series = store.load(digest)
        if series is None:
            raise InvalidParameterError(
                f"series digest {digest!r} is not in the store at {store.root}"
            )
        return series

    # ------------------------------------------------------------------ #
    # shared state
    # ------------------------------------------------------------------ #
    @property
    def series(self) -> DataSeries:
        """The normalised series (validated once at construction)."""
        return self._series

    @property
    def values(self) -> np.ndarray:
        """The validated float64 values (read-only)."""
        return self._series.values

    @property
    def name(self) -> str:
        """The series name used in reports and result envelopes."""
        return self._series.name

    @property
    def engine(self) -> EngineConfig:
        """The session's execution configuration."""
        return self._engine

    @property
    def cache_config(self) -> CacheConfig:
        """The session's result-cache configuration."""
        return self._cache_config

    @property
    def series_digest(self) -> str:
        """Content digest of the series (persistent-cache / service key)."""
        if self._digest is None:
            self._digest = series_digest(self.values)
        return self._digest

    @property
    def stats(self) -> SlidingStats:
        """The shared sliding statistics (created lazily, once)."""
        if self._stats is None:
            self._stats = SlidingStats(self.values)
        return self._stats

    @property
    def segment_pool(self) -> SharedSegmentPool:
        """The session's digest-keyed shared-memory segment pool.

        Engine-backed profile runs acquire their packed series segment here
        (see :meth:`segment_key`), so the pack and the per-worker copy are
        paid **once per series per session** instead of once per call.  The
        session owns the segments: :meth:`close` unlinks them.  Created
        lazily — sessions that never route through a process executor never
        touch shared memory.
        """
        if self._segments is None or self._closed:
            self._segments = SharedSegmentPool()
            self._closed = False
        return self._segments

    def segment_key(self, window: int) -> str:
        """Pool key of the packed arrays for one window length.

        The packed segment holds the centered series *and* the per-window
        statistics (means, stds, seeding dot products), so the identity is
        the series content digest plus the window.
        """
        return f"{self.series_digest}:w{int(window)}"

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the session remains usable —
        engine resources are simply re-created on demand)."""
        return self._closed

    def close(self) -> None:
        """Release the session's engine resources (idempotent).

        Unlinks every shared-memory segment the session registered.  The
        caches are left alone: the in-memory results die with the object
        anyway and the persistent spill exists to outlive it.  Long-lived
        owners (the service's session pool) call this on eviction; ad-hoc
        users get it from the context-manager form::

            with repro.analyze(series, engine="parallel") as session:
                ...
        """
        if self._segments is not None:
            self._segments.close()
        self._closed = True

    def __enter__(self) -> "Analysis":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not getattr(self, "_closed", True):
                self.close()
        except Exception:
            pass

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        return (
            f"Analysis(name={self.name!r}, length={len(self)}, "
            f"engine={self._engine.as_dict()}, cached_results={len(self._results)})"
        )

    def base_dot_products(self, window: int) -> np.ndarray:
        """Memoized ``QT[0, j]`` sliding dot products for one window length.

        This is the single FFT product a STOMP run needs; caching it means a
        repeated ``matrix_profile`` call at the same window (with caching
        disabled or different options) still skips the FFT.  The products
        are taken on the **mean-centered** series — the form
        :func:`repro.matrix_profile.stomp.stomp` expects for its centered
        recurrence (``centered_first_row_qt=``).
        """
        window = int(window)
        cached = self._base_qt.get(window)
        if cached is None:
            if window < 1 or window > len(self):
                raise InvalidParameterError(
                    f"window {window} out of range [1, {len(self)}]"
                )
            centered = self.stats.centered_values
            cached = sliding_dot_product(centered[:window], centered)
            self._base_qt[window] = cached
        return cached

    def coerce_other(self, other) -> Tuple[np.ndarray, SlidingStats | None]:
        """Normalise the second series of a join/distance computation.

        Accepts another :class:`Analysis` (whose statistics are reused), a
        :class:`~repro.series.DataSeries`, an array, or a list.
        """
        if isinstance(other, Analysis):
            return other.values, other.stats
        return as_series(other).values, None

    # ------------------------------------------------------------------ #
    # cache management
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict:
        """Hit/miss counters, bounds and occupancy of the result cache."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "persistent_hits": self._persistent_hits,
            **self._results.info(),
            "persist_dir": (
                None if self._persistent is None else str(self._persistent.root)
            ),
        }

    def clear_cache(self) -> None:
        """Drop every in-memory cached result and memoized FFT product.

        The persistent spill directory (when configured) is left intact —
        it exists precisely to outlive sessions; remove the directory itself
        to discard it.
        """
        self._results.clear()
        self._base_qt.clear()
        self._hits = 0
        self._misses = 0
        self._persistent_hits = 0

    def _probe_caches(self, key: str) -> Tuple[AnalysisResult, str] | None:
        """One cache probe: memory first, then the persistent spill.

        Returns ``(result, source)`` with ``source`` ``"memory"`` or
        ``"persistent"`` (a spill hit is promoted into the LRU as a side
        effect), or ``None`` on a full miss.  Shared by :meth:`run_with_info`
        and :meth:`run_many_with_info` so both report identical
        ``cache_source`` semantics.
        """
        cached = self._results.get(key)
        if cached is not None:
            self._hits += 1
            _CACHE_MEMORY_HITS.inc()
            return cached, "memory"
        spilled = self._load_spilled(key)
        if spilled is not None:
            return spilled, "persistent"
        return None

    def _load_spilled(self, key: str) -> AnalysisResult | None:
        """Probe the persistent spill and promote a hit into the LRU cache.

        The spill file's size (already known from the read) feeds the byte
        accounting — no re-serialisation on the hit path.
        """
        if self._persistent is None:
            return None
        spilled = self._persistent.load(self.series_digest, key)
        if spilled is None:
            return None
        result, size = spilled
        self._persistent_hits += 1
        _CACHE_PERSISTENT_HITS.inc()
        self._results.put(key, result, size)
        return result

    def _cache_store(self, key: str, result: AnalysisResult) -> None:
        """Insert one computed envelope into the memory cache and the spill.

        The envelope is serialised exactly once: the dict form feeds both
        the byte-size accounting and the persistent spill file.
        """
        try:
            document = result.as_dict()
        except SerializationError:
            return
        size = len(json.dumps(document, sort_keys=True).encode("utf-8"))
        self._results.put(key, result, size)
        if self._persistent is not None:
            self._persistent.store(
                self.series_digest, key, result, result_dict=document
            )

    def _index_computed(self, spec, request: AnalysisRequest, key, result) -> None:
        """Catalog one freshly-computed result in the session's motif index.

        Cache hits never reach here (their rows were catalogued when they
        were first computed — or arrive via ``MotifIndex.backfill``).  The
        row identity is the same canonical key the caches use, so live
        ingest and backfill dedupe against each other; a request whose
        parameters resist canonicalisation is simply not indexed.
        """
        if self._index is None:
            return
        if key is None:
            key = canonical_cache_key(spec, request)
        if key is None:
            return
        self._index.ingest_result(
            result, series_digest=self.series_digest, result_key=key
        )

    def probe(self, request: AnalysisRequest) -> Tuple[AnalysisResult, str] | None:
        """Cache-only lookup of one request: ``(result, source)`` or ``None``.

        The read half of :meth:`run_with_info` — resolves the algorithm,
        derives the canonical key and probes both cache tiers, but never
        computes.  The service's process data plane uses this split: the
        parent probes its pooled session, only misses travel to a worker
        process, and the worker's answer comes back through
        :meth:`adopt_result`.
        """
        if not isinstance(request, AnalysisRequest):
            raise InvalidParameterError(
                f"probe() expects an AnalysisRequest, got {type(request).__name__}"
            )
        spec = resolve_algorithm(request.kind, request.algo)
        key = canonical_cache_key(spec, request)
        if key is None:
            return None
        return self._probe_caches(key)

    def adopt_result(self, request: AnalysisRequest, result: AnalysisResult) -> None:
        """Record a result computed elsewhere as if this session computed it.

        The write half of :meth:`run_with_info`: the envelope enters both
        cache tiers under the request's canonical key and is catalogued in
        the motif index.  ``result`` must answer ``request`` for this series
        — the caller (the service worker loop) guarantees that by
        construction, the session cannot check it.
        """
        if not isinstance(request, AnalysisRequest):
            raise InvalidParameterError(
                f"adopt_result() expects an AnalysisRequest, "
                f"got {type(request).__name__}"
            )
        spec = resolve_algorithm(request.kind, request.algo)
        key = canonical_cache_key(spec, request)
        self._misses += 1
        _CACHE_MISSES.inc()
        if key is not None:
            self._cache_store(key, result)
        self._index_computed(spec, request, key, result)

    # ------------------------------------------------------------------ #
    # the one dispatch path
    # ------------------------------------------------------------------ #
    def run(self, request: AnalysisRequest, *, cache: bool = True) -> AnalysisResult:
        """Execute one :class:`~repro.api.requests.AnalysisRequest`.

        Every public method funnels through here: the request resolves
        against the registry, the result caches (in-memory LRU, then the
        persistent spill when configured) are consulted under the request's
        canonical key, and the computation lands in the common
        :class:`~repro.api.requests.AnalysisResult` envelope.
        """
        return self.run_with_info(request, cache=cache)[0]

    def run_with_info(
        self, request: AnalysisRequest, *, cache: bool = True
    ) -> Tuple[AnalysisResult, str]:
        """Like :meth:`run`, also reporting where the result came from.

        The second element is ``"memory"`` (in-memory cache hit),
        ``"persistent"`` (spill-file hit from an earlier session) or
        ``"computed"``.  The service layer surfaces it to clients and the
        latency benchmark keys its regimes on it.

        Note that a persistent hit returns the envelope as it round-trips
        through JSON: a ``motifs``/``valmod`` payload comes back as the
        cross-algorithm :class:`~repro.baselines.base.RangeDiscoveryResult`
        view, not the full in-process ``ValmodResult``.  Such hits are
        tagged (``result.is_envelope_view`` is true, the payload is an
        :class:`~repro.api.requests.EnvelopeRangeResult`) so reaching for a
        missing ``ValmodResult`` field raises an explanatory error instead
        of a bare ``AttributeError``.
        """
        if not isinstance(request, AnalysisRequest):
            raise InvalidParameterError(
                f"run() expects an AnalysisRequest, got {type(request).__name__}"
            )
        spec = resolve_algorithm(request.kind, request.algo)
        key = canonical_cache_key(spec, request) if cache else None
        if key is not None:
            hit = self._probe_caches(key)
            if hit is not None:
                return hit
        self._misses += 1
        _CACHE_MISSES.inc()
        _SESSION_RUNS.inc()
        started = time.perf_counter()
        with obs.span("session.run", kind=spec.kind, algo=spec.key):
            payload = spec.runner(self, **request.params)
        elapsed = time.perf_counter() - started
        _SESSION_COMPUTE_SECONDS.observe(elapsed)
        result = AnalysisResult(
            kind=spec.kind,
            algo=spec.key,
            params=request.params,
            series_name=self.name,
            series_length=len(self),
            elapsed_seconds=elapsed,
            payload=payload,
        )
        if key is not None:
            self._cache_store(key, result)
        self._index_computed(spec, request, key, result)
        return result, "computed"

    def run_many(
        self, requests: Iterable[AnalysisRequest], *, cache: bool = True
    ) -> List[AnalysisResult]:
        """Execute several requests, batching profile work through the engine.

        STOMP matrix-profile requests (the service's bread and butter) are
        grouped into one :func:`repro.engine.batch.compute_profiles`
        submission driven by the session's :class:`EngineConfig` — one
        statistics pass, optional process-level parallelism.  Everything
        else runs through :meth:`run` in submission order.  Results come
        back in submission order either way.

        Error semantics match :meth:`run`: the first failing request raises
        (results of requests that already completed are still in the session
        cache, but not returned).  Submit requests individually when partial
        results must survive a failure.
        """
        return [result for result, _ in self.run_many_with_info(requests, cache=cache)]

    def run_many_with_info(
        self, requests: Iterable[AnalysisRequest], *, cache: bool = True
    ) -> List[Tuple[AnalysisResult, str]]:
        """Like :meth:`run_many`, also reporting where each result came from.

        Every entry carries the same ``cache_source`` tag as
        :meth:`run_with_info`: ``"memory"``, ``"persistent"`` or
        ``"computed"``.  Batch-shaped requests probe both cache tiers —
        including the persistent spill, whose hits are promoted into the
        LRU — *before* batching, so work a previous process already
        persisted is never recomputed just because it arrived in a batch.
        """
        request_list = list(requests)
        results: List[Tuple[AnalysisResult, str] | None] = [None] * len(request_list)
        batchable: List[int] = []
        for index, request in enumerate(request_list):
            if not isinstance(request, AnalysisRequest):
                raise InvalidParameterError(
                    f"run_many() expects AnalysisRequest items, "
                    f"got {type(request).__name__}"
                )
            spec = resolve_algorithm(request.kind, request.algo)
            if spec.kind == "matrix_profile" and spec.key == "stomp" and set(
                request.params
            ) <= {"window", "exclusion_radius"}:
                if cache:
                    key = canonical_cache_key(spec, request)
                    hit = None if key is None else self._probe_caches(key)
                    if hit is not None:
                        results[index] = hit
                        continue
                batchable.append(index)
            else:
                results[index] = self.run_with_info(request, cache=cache)
        if batchable:
            self._run_profile_batch(request_list, results, batchable, cache)
        return [result for result in results if result is not None]

    def _run_profile_batch(
        self,
        requests: Sequence[AnalysisRequest],
        results: "List[Tuple[AnalysisResult, str] | None]",
        indices: List[int],
        cache: bool,
    ) -> None:
        """Dispatch plain STOMP requests as one engine batch."""
        from repro.engine.batch import ProfileJob, compute_profiles

        series_ref: object = self.values
        if self._engine.enabled and self._blob_handle is not None:
            # Store-resolved sessions hand workers the blob handle: each
            # worker memory-maps the catalog file directly (zero-copy)
            # instead of receiving a pickled or shm-repacked array.
            from pathlib import Path

            if Path(self._blob_handle.path).is_file():
                series_ref = self._blob_handle
        jobs = [
            ProfileJob(
                series_ref,
                window=int(requests[index].params["window"]),
                exclusion_radius=requests[index].params.get("exclusion_radius"),
                block_size=self._engine.block_size,
                kernel=self._engine.kernel,
                name=self.name,
            )
            for index in indices
        ]
        executor = self._engine.executor if self._engine.enabled else "serial"
        _SESSION_RUNS.inc(len(indices))
        started = time.perf_counter()
        with obs.span("session.run_batch", jobs=len(jobs)):
            outcomes = compute_profiles(
                jobs, executor=executor, n_jobs=self._engine.n_jobs
            )
        elapsed = time.perf_counter() - started
        _SESSION_COMPUTE_SECONDS.observe(elapsed)
        self._misses += len(indices)
        _CACHE_MISSES.inc(len(indices))
        stomp_spec = resolve_algorithm("matrix_profile", "stomp")
        for index, outcome in zip(indices, outcomes):
            request = requests[index]
            result = AnalysisResult(
                kind="matrix_profile",
                algo="stomp",
                params=request.params,
                series_name=self.name,
                series_length=len(self),
                # Per-job wall clock is not observable inside the pool; the
                # batch total is recorded on every member.
                elapsed_seconds=elapsed,
                payload=outcome.unwrap(),
            )
            results[index] = (result, "computed")
            key = canonical_cache_key(stomp_spec, request)
            if cache and key is not None:
                self._cache_store(key, result)
            self._index_computed(stomp_spec, request, key, result)

    # ------------------------------------------------------------------ #
    # the public computation surface
    # ------------------------------------------------------------------ #
    def matrix_profile(
        self, window: int, *, algo: str = "stomp", cache: bool = True, **options: Any
    ) -> AnalysisResult:
        """Matrix profile at one window length.

        ``algo``: ``"stomp"`` (default), ``"scrimp"``, ``"scrimp++"``,
        ``"stamp"`` or ``"brute"``; extra options forward to the algorithm.
        """
        params = {"window": int(window), **options}
        return self.run(
            AnalysisRequest(kind="matrix_profile", algo=algo, params=params),
            cache=cache,
        )

    def motifs(
        self,
        min_length: int,
        max_length: int,
        *,
        method: str = "valmod",
        cache: bool = True,
        **options: Any,
    ) -> AnalysisResult:
        """Variable-length motif discovery over ``[min_length, max_length]``.

        ``method``: ``"valmod"`` (default), ``"stomp_range"``, ``"moen"``,
        ``"quick_motif"`` or ``"brute"``.
        """
        params = {
            "min_length": int(min_length),
            "max_length": int(max_length),
            **options,
        }
        return self.run(
            AnalysisRequest(kind="motifs", algo=method, params=params), cache=cache
        )

    def discords(
        self,
        min_length: int,
        max_length: int,
        *,
        cache: bool = True,
        **options: Any,
    ) -> AnalysisResult:
        """Variable-length discords (anomalies) over a length range."""
        params = {
            "min_length": int(min_length),
            "max_length": int(max_length),
            **options,
        }
        return self.run(
            AnalysisRequest(kind="discords", params=params), cache=cache
        )

    def pan_profile(
        self,
        min_length: int,
        max_length: int,
        *,
        cache: bool = True,
        **options: Any,
    ) -> AnalysisResult:
        """SKIMP pan matrix profile over a length range."""
        params = {
            "min_length": int(min_length),
            "max_length": int(max_length),
            **options,
        }
        return self.run(
            AnalysisRequest(kind="pan_profile", params=params), cache=cache
        )

    def ab_join(
        self, other, window: int, *, cache: bool = True, **options: Any
    ) -> AnalysisResult:
        """One-sided AB-join of this series against ``other``.

        ``other`` may be another :class:`Analysis` (statistics reused), a
        :class:`~repro.series.DataSeries`, an array, or a list.
        """
        params = {"other": self._other_param(other), "window": int(window), **options}
        return self.run(AnalysisRequest(kind="ab_join", params=params), cache=cache)

    def mpdist(
        self,
        other,
        window: int,
        *,
        percentile: float = 0.05,
        cache: bool = True,
        **options: Any,
    ) -> AnalysisResult:
        """MPdist between this series and ``other`` at one window length.

        Extra keyword arguments (``kernel=``, ``reseed_interval=``, …) are
        forwarded to :func:`~repro.matrix_profile.mpdist.mpdist`; plain calls
        keep their historical cache keys.
        """
        params = {
            "other": self._other_param(other),
            "window": int(window),
            "percentile": float(percentile),
            **options,
        }
        return self.run(AnalysisRequest(kind="mpdist", params=params), cache=cache)

    def _other_param(self, other):
        """Keep Analysis instances intact (stats reuse) — they digest fine."""
        if isinstance(other, Analysis):
            return other
        return as_series(other)


def analyze(
    series,
    *,
    name: str | None = None,
    engine: "EngineConfig | str | Executor | None" = None,
    cache_config: CacheConfig | None = None,
    store=None,
    index=None,
) -> Analysis:
    """Open an :class:`Analysis` session over ``series`` (the main entry point).

    ``series`` may also be a content digest string, resolved through
    ``store`` (a :class:`repro.store.SeriesStore`): the session then runs
    over the memory-mapped catalog blob without the caller ever holding the
    values — the in-process twin of the service's digest-only requests.
    ``index`` (a :class:`repro.index.MotifIndex`) catalogs every computed
    result's motifs and discords for cross-series queries.
    """
    return Analysis(
        series,
        name=name,
        engine=engine,
        cache_config=cache_config,
        store=store,
        index=index,
    )
