"""String-keyed algorithm registry behind the unified analysis API.

Every computation the :class:`repro.api.Analysis` session can dispatch is
described by one :class:`AlgorithmSpec`: its *kind* (the question family),
its registry *key*, the runner callable, and capability metadata (is it
exact, anytime, engine-aware?).  The session resolves ``(kind, algo)``
through :func:`resolve_algorithm`, so every entry point — the Python
methods, deserialized :class:`~repro.api.requests.AnalysisRequest`
documents, the CLI, the benchmark harness — funnels through one table.

Runners receive the session as their first argument and pull shared state
(validated values, the memoized :class:`~repro.stats.sliding.SlidingStats`,
the per-window base FFT products, the :class:`~repro.api.session.EngineConfig`)
from it instead of recomputing per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.exceptions import InvalidParameterError

__all__ = [
    "AlgorithmSpec",
    "register",
    "unregister",
    "resolve_algorithm",
    "algorithm_keys",
    "registered_kinds",
    "iter_specs",
    "capabilities",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: identity, runner, capability metadata.

    Attributes
    ----------
    kind:
        Question family: ``matrix_profile``, ``motifs``, ``discords``,
        ``pan_profile``, ``ab_join`` or ``mpdist``.
    key:
        Canonical registry key (e.g. ``"stomp"``).
    runner:
        ``runner(session, **params) -> payload``.
    description:
        One-line summary shown by capability listings.
    engine_aware:
        Whether the runner honours the session's
        :class:`~repro.api.session.EngineConfig` (block-partitioned /
        batched execution).
    exact:
        Whether the result is exact at default parameters.
    anytime:
        Whether partial runs yield usable approximations.
    aliases:
        Alternative keys accepted by :func:`resolve_algorithm` (legacy CLI
        spellings like ``"stomp-range"``).
    """

    kind: str
    key: str
    runner: Callable
    description: str
    engine_aware: bool = False
    exact: bool = True
    anytime: bool = False
    aliases: Tuple[str, ...] = field(default_factory=tuple)


_REGISTRY: Dict[Tuple[str, str], AlgorithmSpec] = {}
_ALIASES: Dict[Tuple[str, str], str] = {}
_DEFAULTS: Dict[str, str] = {}
#: Default key each spec displaced when it became its kind's default —
#: lets :func:`unregister` restore the previous default instead of
#: silently promoting the alphabetically-first survivor.
_DISPLACED_DEFAULTS: Dict[Tuple[str, str], str | None] = {}


def register(spec: AlgorithmSpec, *, default: bool = False) -> AlgorithmSpec:
    """Add a spec to the registry (optionally as its kind's default)."""
    slot = (spec.kind, spec.key)
    if slot in _REGISTRY:
        raise InvalidParameterError(
            f"algorithm {spec.key!r} is already registered for kind {spec.kind!r}"
        )
    _REGISTRY[slot] = spec
    for alias in spec.aliases:
        _ALIASES[(spec.kind, alias)] = spec.key
    if default or spec.kind not in _DEFAULTS:
        _DISPLACED_DEFAULTS[slot] = _DEFAULTS.get(spec.kind)
        _DEFAULTS[spec.kind] = spec.key
    return spec


def unregister(kind: str, key: str) -> None:
    """Remove a registered spec (and its aliases and default slot).

    Exists for test substrates that install synthetic algorithms (e.g. the
    service suite's deliberately slow runner) and must restore the global
    registry afterwards; production code never unregisters.
    """
    spec = _REGISTRY.pop((kind, key), None)
    if spec is None:
        raise InvalidParameterError(
            f"no {kind!r} algorithm {key!r} is registered"
        )
    for alias in spec.aliases:
        _ALIASES.pop((kind, alias), None)
    displaced = _DISPLACED_DEFAULTS.pop((kind, key), None)
    if _DEFAULTS.get(kind) == key:
        remaining = algorithm_keys(kind)
        if displaced is not None and displaced in remaining:
            _DEFAULTS[kind] = displaced  # restore the default this spec took
        elif remaining:
            _DEFAULTS[kind] = remaining[0]
        else:
            _DEFAULTS.pop(kind, None)


def iter_specs() -> List[AlgorithmSpec]:
    """Every registered spec, sorted by ``(kind, key)`` (for tests/clients)."""
    return [spec for _, spec in sorted(_REGISTRY.items())]


def registered_kinds() -> List[str]:
    """The registered computation kinds, sorted."""
    return sorted({kind for kind, _ in _REGISTRY})


def algorithm_keys(kind: str) -> List[str]:
    """Canonical keys registered for one kind, sorted."""
    return sorted(key for registered, key in _REGISTRY if registered == kind)


def resolve_algorithm(kind: str, algo: str | None = None) -> AlgorithmSpec:
    """Resolve ``(kind, algo)`` to a spec, accepting aliases.

    ``algo=None`` selects the kind's default.  Unknown kinds and keys raise
    :class:`~repro.exceptions.InvalidParameterError` messages that list the
    valid choices.
    """
    kinds = registered_kinds()
    if kind not in kinds:
        raise InvalidParameterError(
            f"unknown analysis kind {kind!r}; available kinds: {kinds}"
        )
    if algo is None:
        algo = _DEFAULTS[kind]
    algo = _ALIASES.get((kind, algo), algo)
    spec = _REGISTRY.get((kind, algo))
    if spec is None:
        raise InvalidParameterError(
            f"unknown {kind} algorithm {algo!r}; available: {algorithm_keys(kind)}"
        )
    return spec


def capabilities() -> List[dict]:
    """Capability metadata of every registered algorithm (for docs / clients)."""
    return [
        {
            "kind": spec.kind,
            "key": spec.key,
            "description": spec.description,
            "engine_aware": spec.engine_aware,
            "exact": spec.exact,
            "anytime": spec.anytime,
            "aliases": list(spec.aliases),
            "default": _DEFAULTS.get(spec.kind) == spec.key,
        }
        for (_, _), spec in sorted(_REGISTRY.items())
    ]


# --------------------------------------------------------------------- #
# built-in algorithms
# --------------------------------------------------------------------- #
def _mp_stomp(session, window: int, **options):
    from repro.matrix_profile.stomp import stomp

    engine = session.engine
    if engine.enabled:
        return stomp(
            session.values,
            window,
            stats=session.stats,
            engine=engine.executor,
            n_jobs=engine.n_jobs,
            block_size=engine.block_size,
            kernel=engine.kernel,
            segment_pool=session.segment_pool,
            segment_key=session.segment_key(window),
            **options,
        )
    return stomp(
        session.values,
        window,
        stats=session.stats,
        kernel=engine.kernel,
        centered_first_row_qt=session.base_dot_products(window),
        **options,
    )


def _mp_scrimp(session, window: int, **options):
    from repro.matrix_profile.scrimp import scrimp

    engine = session.engine
    if engine.kernel is not None:
        options.setdefault("kernel", engine.kernel)
    return scrimp(session.values, window, stats=session.stats, **options)


def _mp_scrimp_pp(session, window: int, **options):
    from repro.matrix_profile.scrimp import scrimp_pp

    engine = session.engine
    if engine.kernel is not None:
        options.setdefault("kernel", engine.kernel)
    return scrimp_pp(session.values, window, stats=session.stats, **options)


def _mp_stamp(session, window: int, **options):
    from repro.matrix_profile.stamp import stamp

    return stamp(session.values, window, stats=session.stats, **options)


def _mp_brute(session, window: int, **options):
    from repro.matrix_profile.brute_force import brute_force_matrix_profile

    return brute_force_matrix_profile(session.values, window, **options)


def _motifs_valmod(session, min_length: int, max_length: int, **options):
    from repro.core.valmod import valmod

    engine = session.engine
    return valmod(
        session.series,
        min_length,
        max_length,
        stats=session.stats,
        engine=engine.executor,
        n_jobs=engine.n_jobs,
        block_size=engine.block_size,
        kernel=engine.kernel,
        **options,
    )


def _motifs_stomp_range(session, min_length: int, max_length: int, **options):
    from repro.baselines.stomp_range import stomp_range

    engine = session.engine
    if engine.enabled:
        options = {**options, "engine": engine.executor, "n_jobs": engine.n_jobs}
    if engine.kernel is not None:
        options = {**options, "kernel": engine.kernel}
    return stomp_range(
        session.series, min_length, max_length, stats=session.stats, **options
    )


def _motifs_moen(session, min_length: int, max_length: int, **options):
    from repro.baselines.moen import moen

    options.pop("top_k", None)  # MOEN reports the single best pair per length
    return moen(session.series, min_length, max_length, stats=session.stats, **options)


def _motifs_quick_motif(session, min_length: int, max_length: int, **options):
    from repro.baselines.quick_motif import quick_motif_range

    options.pop("top_k", None)  # QuickMotif reports the single best pair per length
    return quick_motif_range(session.series, min_length, max_length, **options)


def _motifs_brute(session, min_length: int, max_length: int, **options):
    from repro.baselines.brute_force_range import brute_force_range

    return brute_force_range(session.series, min_length, max_length, **options)


def _discords_exact(session, min_length: int, max_length: int, **options):
    from repro.core.discords import variable_length_discords

    return variable_length_discords(
        session.series, min_length, max_length, stats=session.stats, **options
    )


def _pan_profile_skimp(session, min_length: int, max_length: int, **options):
    from repro.core.skimp import skimp

    engine = session.engine
    if engine.enabled:
        options = {**options, "engine": engine.executor, "n_jobs": engine.n_jobs}
    if engine.kernel is not None:
        options = {**options, "kernel": engine.kernel}
    return skimp(
        session.series, min_length, max_length, stats=session.stats, **options
    )


def _ab_join_mass(session, other, window: int, **options):
    from repro.matrix_profile.ab_join import ab_join

    engine = session.engine
    if engine.enabled:
        options.setdefault("engine", engine.executor)
        options.setdefault("n_jobs", engine.n_jobs)
        options.setdefault("block_size", engine.block_size)
    if engine.kernel is not None:
        options.setdefault("kernel", engine.kernel)
    other_values, other_stats = session.coerce_other(other)
    return ab_join(
        session.values,
        other_values,
        window,
        stats_a=session.stats,
        stats_b=other_stats,
        **options,
    )


def _mpdist_default(session, other, window: int, **options):
    from repro.matrix_profile.mpdist import mpdist

    engine = session.engine
    if engine.enabled:
        options.setdefault("engine", engine.executor)
        options.setdefault("n_jobs", engine.n_jobs)
    if engine.kernel is not None:
        options.setdefault("kernel", engine.kernel)
    other_values, other_stats = session.coerce_other(other)
    return mpdist(
        session.values,
        other_values,
        window,
        stats_a=session.stats,
        stats_b=other_stats,
        **options,
    )


register(
    AlgorithmSpec(
        kind="matrix_profile",
        key="stomp",
        runner=_mp_stomp,
        description="exact O(n^2) matrix profile via the STOMP recurrence",
        engine_aware=True,
    ),
    default=True,
)
register(
    AlgorithmSpec(
        kind="matrix_profile",
        key="scrimp",
        runner=_mp_scrimp,
        description="exact-at-completion anytime profile via diagonal traversal",
        anytime=True,
    )
)
register(
    AlgorithmSpec(
        kind="matrix_profile",
        key="scrimp++",
        runner=_mp_scrimp_pp,
        description="PreSCRIMP seeding plus a (possibly partial) SCRIMP sweep",
        anytime=True,
        aliases=("scrimp_pp", "scrimppp"),
    )
)
register(
    AlgorithmSpec(
        kind="matrix_profile",
        key="stamp",
        runner=_mp_stamp,
        description="anytime profile via one MASS call per subsequence",
        anytime=True,
    )
)
register(
    AlgorithmSpec(
        kind="matrix_profile",
        key="brute",
        runner=_mp_brute,
        description="O(n^2 m) definition-level oracle",
        aliases=("brute-force", "brute_force"),
    )
)

register(
    AlgorithmSpec(
        kind="motifs",
        key="valmod",
        runner=_motifs_valmod,
        description="exact variable-length motifs with lower-bound pruning (the paper)",
        engine_aware=True,
    ),
    default=True,
)
register(
    AlgorithmSpec(
        kind="motifs",
        key="stomp_range",
        runner=_motifs_stomp_range,
        description="one full STOMP profile per length of the range",
        engine_aware=True,
        aliases=("stomp-range",),
    )
)
register(
    AlgorithmSpec(
        kind="motifs",
        key="moen",
        runner=_motifs_moen,
        description="exact best pair per length with MOEN-style length bounds",
    )
)
register(
    AlgorithmSpec(
        kind="motifs",
        key="quick_motif",
        runner=_motifs_quick_motif,
        description="segment-tree pruned fixed-length motif search per length",
        aliases=("quickmotif", "quick-motif"),
    )
)
register(
    AlgorithmSpec(
        kind="motifs",
        key="brute",
        runner=_motifs_brute,
        description="definition-level range oracle",
        aliases=("brute-force", "brute_force"),
    )
)

register(
    AlgorithmSpec(
        kind="discords",
        key="exact",
        runner=_discords_exact,
        description="variable-length discords from per-length STOMP profiles",
    ),
    default=True,
)
register(
    AlgorithmSpec(
        kind="pan_profile",
        key="skimp",
        runner=_pan_profile_skimp,
        description="SKIMP pan matrix profile in breadth-first length order",
        engine_aware=True,
    ),
    default=True,
)
register(
    AlgorithmSpec(
        kind="ab_join",
        key="mass",
        runner=_ab_join_mass,
        description="one-sided AB-join via the kernelized cross-series STOMP recurrence",
        engine_aware=True,
    ),
    default=True,
)
register(
    AlgorithmSpec(
        kind="mpdist",
        key="mpdist",
        runner=_mpdist_default,
        description="k-th smallest of the combined (kernelized) AB-join profiles",
        engine_aware=True,
    ),
    default=True,
)
