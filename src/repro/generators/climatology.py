"""Synthetic climatology series (daily temperature with recurring weather events).

Climatology is one of the application domains the paper's introduction lists
for motif discovery.  Real station records are long daily (or hourly)
temperature series dominated by the seasonal cycle, on top of which shorter
recurring episodes — heat waves, cold snaps, frontal passages — appear with a
duration that is not known a priori and varies between occurrences.  That is
exactly the structure the variable-length experiments need, so this generator
produces:

* a smooth seasonal (annual) cycle plus a weak diurnal component;
* recurring *episodes* (warm or cold anomalies) with a plateau shape whose
  duration is jittered around ``episode_duration``;
* red (auto-correlated) weather noise.

The ground truth (episode onsets and durations) is stored in the metadata so
tests and examples can evaluate discovered motifs against it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["generate_climate"]


def _episode_shape(length: int, amplitude: float, shoulder: float = 0.2) -> np.ndarray:
    """A plateau-shaped anomaly with smooth onset and decay."""
    positions = np.linspace(0.0, 1.0, length)
    rise = 1.0 / (1.0 + np.exp(-12.0 * (positions - shoulder)))
    fall = 1.0 / (1.0 + np.exp(12.0 * (positions - (1.0 - shoulder))))
    return amplitude * rise * fall


def generate_climate(
    length: int,
    *,
    season_period: int = 1460,
    diurnal_period: int = 4,
    seasonal_amplitude: float = 10.0,
    diurnal_amplitude: float = 1.5,
    episode_duration: int = 90,
    duration_jitter: float = 0.15,
    episode_gap: int = 400,
    episode_amplitude: float = 4.0,
    weather_noise: float = 0.8,
    random_state: np.random.Generator | int | None = None,
    name: str = "climate",
) -> DataSeries:
    """Generate a synthetic temperature record with recurring anomaly episodes.

    Parameters
    ----------
    length:
        Number of points of the series.
    season_period:
        Points per seasonal (annual) cycle.
    diurnal_period:
        Points per day (for sub-daily sampling; set to 0 to disable the
        diurnal component).
    seasonal_amplitude, diurnal_amplitude:
        Peak-to-mean amplitude of the two periodic components (in degrees).
    episode_duration:
        Nominal duration of the recurring warm/cold episodes (the "natural"
        motif length of the series).
    duration_jitter:
        Relative standard deviation of the episode durations.
    episode_gap:
        Mean number of points between consecutive episode onsets.
    episode_amplitude:
        Peak anomaly of an episode (degrees); the sign alternates randomly
        between warm and cold events.
    weather_noise:
        Standard deviation of the red (AR(1)) weather noise.

    Returns
    -------
    DataSeries
        ``metadata["episode_starts"]`` / ``metadata["episode_durations"]``
        hold the ground truth; ``metadata["episode_duration"]`` the nominal
        length.
    """
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    if season_period < 4:
        raise InvalidParameterError(f"season_period must be >= 4, got {season_period}")
    if episode_duration < 8:
        raise InvalidParameterError(
            f"episode_duration must be >= 8, got {episode_duration}"
        )
    if episode_gap <= episode_duration:
        raise InvalidParameterError(
            f"episode_gap must exceed episode_duration ({episode_gap} <= {episode_duration})"
        )
    if duration_jitter < 0 or weather_noise < 0:
        raise InvalidParameterError("jitter and noise amplitudes must be >= 0")
    rng = _rng(random_state)

    time_axis = np.arange(length, dtype=np.float64)
    values = seasonal_amplitude * np.sin(2.0 * np.pi * time_axis / season_period)
    if diurnal_period and diurnal_amplitude:
        values += diurnal_amplitude * np.sin(2.0 * np.pi * time_axis / diurnal_period)

    episode_starts: list[int] = []
    episode_durations: list[int] = []
    position = int(rng.integers(0, max(1, episode_gap // 2)))
    while position < length:
        duration = max(
            8, int(round(episode_duration * (1.0 + rng.normal(0.0, duration_jitter))))
        )
        sign = 1.0 if rng.random() < 0.5 else -1.0
        amplitude = sign * episode_amplitude * (1.0 + rng.normal(0.0, 0.1))
        stop = min(position + duration, length)
        values[position:stop] += _episode_shape(duration, amplitude)[: stop - position]
        episode_starts.append(position)
        episode_durations.append(duration)
        position += max(duration + 1, int(round(episode_gap * (1.0 + rng.normal(0.0, 0.2)))))

    if weather_noise > 0:
        # AR(1) red noise: tomorrow's anomaly remembers today's.
        white = rng.normal(0.0, weather_noise, size=length)
        red = np.empty(length, dtype=np.float64)
        red[0] = white[0]
        for index in range(1, length):
            red[index] = 0.7 * red[index - 1] + white[index]
        values += red

    return DataSeries(
        values,
        name=name,
        metadata={
            "generator": "climate",
            "episode_duration": episode_duration,
            "episode_starts": episode_starts,
            "episode_durations": episode_durations,
        },
    )
