"""Synthetic dataset generators.

The paper's evaluation uses real recordings (ECG, ASTRO light curves,
seismology, entomology) that are not redistributable; these generators build
synthetic stand-ins that preserve the property each experiment relies on —
repeated patterns whose natural length is unknown a priori and differs from
any single fixed subsequence length (see the substitution table in
DESIGN.md).  The planted-motif generator additionally embeds patterns at
known positions so tests can check discovered motifs against ground truth.
"""

from repro.generators.astro import generate_astro
from repro.generators.climatology import generate_climate
from repro.generators.ecg import generate_ecg
from repro.generators.entomology import generate_epg
from repro.generators.noise import add_gaussian_noise, add_spikes, generate_noise
from repro.generators.planted import PlantedMotif, generate_planted_motifs
from repro.generators.random_walk import generate_random_walk, generate_smooth_random_walk
from repro.generators.respiration import generate_respiration
from repro.generators.robotics import generate_gait
from repro.generators.seismic import generate_seismic

__all__ = [
    "PlantedMotif",
    "add_gaussian_noise",
    "add_spikes",
    "generate_astro",
    "generate_climate",
    "generate_ecg",
    "generate_epg",
    "generate_gait",
    "generate_noise",
    "generate_planted_motifs",
    "generate_random_walk",
    "generate_respiration",
    "generate_seismic",
    "generate_smooth_random_walk",
]
