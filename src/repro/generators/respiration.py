"""Synthetic respiration series (sleep-study breathing with apnea events).

Reference [6] of the paper is a sleep-study reliability paper (respiratory
disturbance scoring); the corresponding recordings are airflow/chest-belt
series in which normal breathing cycles alternate with *apnea* episodes
(reduced or absent airflow followed by a recovery gasp).  Both structures are
motifs of *a priori unknown and different* lengths — breathing cycles last a
few seconds, apnea events tens of seconds — which makes the series a natural
variable-length benchmark and a good discord workload (isolated events).

The generator produces:

* quasi-periodic breathing (amplitude- and period-jittered sinusoid bursts);
* apnea episodes: the breathing amplitude collapses for a jittered duration
  and a recovery gasp (deep breath) follows;
* slow baseline drift (body movements) and measurement noise.

Ground truth (apnea onsets/durations, nominal breath period) is stored in the
metadata.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["generate_respiration"]


def generate_respiration(
    length: int,
    *,
    breath_period: int = 80,
    period_jitter: float = 0.08,
    amplitude_jitter: float = 0.10,
    apnea_duration: int = 320,
    apnea_gap: int = 1200,
    duration_jitter: float = 0.20,
    gasp_amplitude: float = 1.8,
    drift_amplitude: float = 0.15,
    noise_level: float = 0.03,
    random_state: np.random.Generator | int | None = None,
    name: str = "respiration",
) -> DataSeries:
    """Generate a synthetic respiration (airflow) recording with apnea events.

    Parameters
    ----------
    length:
        Number of points of the series.
    breath_period:
        Nominal points per breathing cycle (short motif length).
    apnea_duration:
        Nominal duration of an apnea episode, suppression plus recovery gasp
        (long motif length).
    apnea_gap:
        Mean number of points between consecutive apnea onsets.
    gasp_amplitude:
        Amplitude multiplier of the recovery breath that ends each apnea.
    drift_amplitude:
        Amplitude of the slow baseline drift.
    noise_level:
        Standard deviation of the white measurement noise.

    Returns
    -------
    DataSeries
        ``metadata["apnea_starts"]`` / ``metadata["apnea_durations"]`` hold the
        ground truth; ``metadata["breath_period"]`` and
        ``metadata["apnea_duration"]`` the two nominal motif lengths.
    """
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    if breath_period < 8:
        raise InvalidParameterError(f"breath_period must be >= 8, got {breath_period}")
    if apnea_duration < 2 * breath_period:
        raise InvalidParameterError(
            "apnea_duration must be at least two breathing cycles "
            f"({apnea_duration} < {2 * breath_period})"
        )
    if apnea_gap <= apnea_duration:
        raise InvalidParameterError(
            f"apnea_gap must exceed apnea_duration ({apnea_gap} <= {apnea_duration})"
        )
    if min(period_jitter, amplitude_jitter, duration_jitter, noise_level) < 0:
        raise InvalidParameterError("jitter and noise amplitudes must be >= 0")
    rng = _rng(random_state)

    # Breathing: phase-continuous oscillation with per-cycle period/amplitude jitter.
    values = np.zeros(length, dtype=np.float64)
    position = 0
    while position < length:
        this_period = max(
            8, int(round(breath_period * (1.0 + rng.normal(0.0, period_jitter))))
        )
        amplitude = 1.0 + rng.normal(0.0, amplitude_jitter)
        stop = min(position + this_period, length)
        phase = np.linspace(0.0, 2.0 * np.pi, this_period, endpoint=False)
        values[position:stop] = amplitude * np.sin(phase[: stop - position])
        position += this_period

    # Apnea episodes: suppress the breathing envelope, then add a recovery gasp.
    apnea_starts: list[int] = []
    apnea_durations: list[int] = []
    position = int(rng.integers(apnea_gap // 2, apnea_gap))
    while position < length:
        duration = max(
            2 * breath_period,
            int(round(apnea_duration * (1.0 + rng.normal(0.0, duration_jitter)))),
        )
        stop = min(position + duration, length)
        span = stop - position
        envelope = np.ones(span)
        suppressed = int(span * 0.75)
        envelope[:suppressed] = 0.12  # near-flat airflow during the apnea
        values[position:stop] *= envelope
        # Recovery gasp: one deep breath right after the suppression.
        gasp_length = min(breath_period, stop - (position + suppressed))
        if gasp_length > 4:
            gasp_phase = np.linspace(0.0, 2.0 * np.pi, gasp_length, endpoint=False)
            values[position + suppressed : position + suppressed + gasp_length] = (
                gasp_amplitude * np.sin(gasp_phase)
            )
        apnea_starts.append(position)
        apnea_durations.append(duration)
        position += max(duration + 1, int(round(apnea_gap * (1.0 + rng.normal(0.0, 0.25)))))

    # Slow drift (posture changes) and measurement noise.
    time_axis = np.arange(length, dtype=np.float64)
    values += drift_amplitude * np.sin(2.0 * np.pi * time_axis / (breath_period * 23.7))
    if noise_level > 0:
        values += rng.normal(0.0, noise_level, size=length)

    return DataSeries(
        values,
        name=name,
        metadata={
            "generator": "respiration",
            "breath_period": breath_period,
            "apnea_duration": apnea_duration,
            "apnea_starts": apnea_starts,
            "apnea_durations": apnea_durations,
        },
    )
