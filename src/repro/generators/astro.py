"""Synthetic astronomical light curves (the paper's ASTRO dataset stand-in).

The ASTRO dataset of the paper contains brightness measurements of celestial
objects; its repeated patterns are transit/eclipse events whose duration is
not known in advance and varies between objects.  The generator emits a slow
stochastic baseline (star variability) with superimposed dimming events of a
characteristic—but jittered—duration, which is precisely the structure the
variable-length experiments exercise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["generate_astro"]


def _transit_shape(length: int, depth: float, sharpness: float = 8.0) -> np.ndarray:
    """A smooth-edged dimming event (trapezoid with rounded shoulders)."""
    positions = np.linspace(-1.0, 1.0, length)
    ingress = 1.0 / (1.0 + np.exp(-sharpness * (positions + 0.6)))
    egress = 1.0 / (1.0 + np.exp(sharpness * (positions - 0.6)))
    return -depth * ingress * egress


def generate_astro(
    length: int,
    *,
    transit_duration: int = 180,
    duration_jitter: float = 0.10,
    transit_period: int = 900,
    period_jitter: float = 0.25,
    transit_depth: float = 1.0,
    variability: float = 0.15,
    noise_level: float = 0.05,
    random_state: np.random.Generator | int | None = None,
    name: str = "astro",
) -> DataSeries:
    """Generate a synthetic light curve with recurring transit events.

    Returns a :class:`~repro.series.DataSeries` whose ``metadata`` records the
    ground-truth ``transit_starts`` and ``transit_durations``.
    """
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    if transit_duration < 8:
        raise InvalidParameterError(
            f"transit_duration must be >= 8, got {transit_duration}"
        )
    if transit_period <= transit_duration:
        raise InvalidParameterError(
            "transit_period must exceed transit_duration "
            f"({transit_period} <= {transit_duration})"
        )
    rng = _rng(random_state)

    # Slow stellar variability: a heavily smoothed random walk.
    steps = rng.normal(0.0, 1.0, size=length)
    baseline = np.cumsum(steps)
    kernel_size = max(8, transit_duration // 2)
    kernel = np.full(kernel_size, 1.0 / kernel_size)
    baseline = np.convolve(baseline, kernel, mode="same")
    scale = baseline.std()
    if scale > 0:
        baseline = variability * baseline / scale

    values = np.array(baseline)
    transit_starts: list[int] = []
    transit_durations: list[int] = []
    position = int(rng.integers(0, max(1, transit_period // 2)))
    while position < length:
        duration = max(
            8, int(round(transit_duration * (1.0 + rng.normal(0.0, duration_jitter))))
        )
        depth = transit_depth * (1.0 + rng.normal(0.0, 0.05))
        stop = min(position + duration, length)
        values[position:stop] += _transit_shape(duration, depth)[: stop - position]
        transit_starts.append(position)
        transit_durations.append(duration)
        gap = max(
            duration + 1,
            int(round(transit_period * (1.0 + rng.normal(0.0, period_jitter)))),
        )
        position += gap

    if noise_level > 0:
        values += rng.normal(0.0, noise_level, size=length)

    return DataSeries(
        values,
        name=name,
        metadata={
            "generator": "astro",
            "transit_duration": transit_duration,
            "transit_starts": transit_starts,
            "transit_durations": transit_durations,
        },
    )
