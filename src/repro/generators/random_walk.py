"""Random-walk series — the canonical "no planted structure" background."""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["generate_random_walk", "generate_smooth_random_walk"]


def generate_random_walk(
    length: int,
    *,
    step_scale: float = 1.0,
    random_state: np.random.Generator | int | None = None,
    name: str = "random-walk",
) -> DataSeries:
    """Cumulative sum of Gaussian steps."""
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    if step_scale <= 0:
        raise InvalidParameterError(f"step_scale must be positive, got {step_scale}")
    rng = _rng(random_state)
    values = np.cumsum(rng.normal(0.0, step_scale, size=length))
    return DataSeries(values, name=name, metadata={"generator": "random_walk"})


def generate_smooth_random_walk(
    length: int,
    *,
    smoothing: int = 8,
    step_scale: float = 1.0,
    random_state: np.random.Generator | int | None = None,
    name: str = "smooth-random-walk",
) -> DataSeries:
    """Random walk convolved with a box filter (locally smooth, like sensor data)."""
    if smoothing < 1:
        raise InvalidParameterError(f"smoothing must be >= 1, got {smoothing}")
    walk = generate_random_walk(
        length + smoothing, step_scale=step_scale, random_state=random_state
    )
    kernel = np.full(smoothing, 1.0 / smoothing)
    values = np.convolve(walk.values, kernel, mode="valid")[:length]
    return DataSeries(values, name=name, metadata={"generator": "smooth_random_walk"})
