"""Synthetic seismograms (the paper's seismology demo scenario stand-in).

Seismic recordings consist of long stretches of low-amplitude ambient noise
interrupted by transient events (quakes or quarry blasts) that share a
characteristic envelope — a sharp onset followed by an exponentially decaying
oscillation — whose duration differs from event to event.  Repeated events of
this kind are the motifs the demo scenario looks for.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["generate_seismic"]


def _event(length: int, frequency: float, rng: np.random.Generator) -> np.ndarray:
    """One seismic event: enveloped oscillation with a noisy tail."""
    time_axis = np.arange(length, dtype=np.float64)
    onset = length * 0.08
    envelope = np.where(
        time_axis < onset,
        time_axis / max(onset, 1.0),
        np.exp(-(time_axis - onset) / (length * 0.25)),
    )
    phase = rng.uniform(0.0, 2.0 * np.pi)
    carrier = np.sin(2.0 * np.pi * frequency * time_axis / length + phase)
    return envelope * carrier


def generate_seismic(
    length: int,
    *,
    event_duration: int = 160,
    duration_jitter: float = 0.12,
    num_events: int | None = None,
    event_amplitude: float = 4.0,
    carrier_cycles: float = 12.0,
    noise_level: float = 1.0,
    random_state: np.random.Generator | int | None = None,
    name: str = "seismic",
) -> DataSeries:
    """Generate ambient noise with recurring transient events.

    ``metadata`` records the ground-truth ``event_starts`` and
    ``event_durations``.
    """
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    if event_duration < 16:
        raise InvalidParameterError(f"event_duration must be >= 16, got {event_duration}")
    rng = _rng(random_state)
    if num_events is None:
        num_events = max(2, length // (event_duration * 6))

    values = rng.normal(0.0, noise_level if noise_level > 0 else 1e-3, size=length)
    event_starts: list[int] = []
    event_durations: list[int] = []
    min_gap = event_duration * 2
    attempts = 0
    while len(event_starts) < num_events and attempts < num_events * 20:
        attempts += 1
        duration = max(
            16, int(round(event_duration * (1.0 + rng.normal(0.0, duration_jitter))))
        )
        start = int(rng.integers(0, max(1, length - duration)))
        if any(abs(start - existing) < min_gap for existing in event_starts):
            continue
        values[start : start + duration] += event_amplitude * _event(
            duration, carrier_cycles, rng
        )
        event_starts.append(start)
        event_durations.append(duration)

    order = np.argsort(event_starts)
    return DataSeries(
        values,
        name=name,
        metadata={
            "generator": "seismic",
            "event_duration": event_duration,
            "event_starts": [event_starts[i] for i in order],
            "event_durations": [event_durations[i] for i in order],
        },
    )
