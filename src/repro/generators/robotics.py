"""Synthetic robotics telemetry (gait / actuation cycles of variable duration).

Robotics is the first application domain the paper's introduction lists.
Typical recordings are accelerometer or joint-torque traces of a walking or
manipulating robot: each gait cycle (or pick-and-place cycle) produces a
stereotyped multi-phase pattern, but the cycle duration drifts with speed,
load and terrain — so the "right" motif length is unknown and variable,
which is the situation VALMOD addresses.

The generator emits a sequence of gait cycles, each composed of a swing
impulse, a stance plateau and a push-off oscillation, with per-cycle duration
and amplitude jitter, interleaved with idle segments (the robot standing
still), plus sensor noise.  Ground-truth cycle onsets and durations are
stored in the metadata.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["generate_gait"]


def _gait_cycle(length: int, push_off_cycles: float = 2.5) -> np.ndarray:
    """One stereotyped gait cycle: swing impulse, stance plateau, push-off."""
    positions = np.linspace(0.0, 1.0, length, endpoint=False)
    swing = 1.2 * np.exp(-0.5 * ((positions - 0.15) / 0.05) ** 2)
    stance = 0.5 / (1.0 + np.exp(-30.0 * (positions - 0.35))) / (
        1.0 + np.exp(30.0 * (positions - 0.65))
    )
    push_off = (
        0.4
        * np.sin(2.0 * np.pi * push_off_cycles * (positions - 0.7) / 0.3)
        * ((positions >= 0.7) & (positions < 1.0))
    )
    return swing + stance + push_off


def generate_gait(
    length: int,
    *,
    cycle_period: int = 160,
    period_jitter: float = 0.10,
    amplitude_jitter: float = 0.08,
    idle_probability: float = 0.08,
    idle_duration: int = 200,
    noise_level: float = 0.03,
    random_state: np.random.Generator | int | None = None,
    name: str = "gait",
) -> DataSeries:
    """Generate a synthetic accelerometer-style gait recording.

    Parameters
    ----------
    length:
        Number of points of the series.
    cycle_period:
        Nominal points per gait cycle (the natural motif length).
    period_jitter, amplitude_jitter:
        Relative standard deviation of the per-cycle duration and amplitude.
    idle_probability:
        Probability, after each cycle, of inserting an idle (standing) segment.
    idle_duration:
        Nominal duration of an idle segment.
    noise_level:
        Standard deviation of the white sensor noise.

    Returns
    -------
    DataSeries
        ``metadata["cycle_starts"]`` / ``metadata["cycle_durations"]`` hold the
        ground truth; ``metadata["cycle_period"]`` the nominal length.
    """
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    if cycle_period < 16:
        raise InvalidParameterError(f"cycle_period must be >= 16, got {cycle_period}")
    if not 0.0 <= idle_probability <= 1.0:
        raise InvalidParameterError(
            f"idle_probability must be in [0, 1], got {idle_probability}"
        )
    if period_jitter < 0 or amplitude_jitter < 0 or noise_level < 0:
        raise InvalidParameterError("jitter and noise amplitudes must be >= 0")
    if idle_duration < 1:
        raise InvalidParameterError(f"idle_duration must be >= 1, got {idle_duration}")
    rng = _rng(random_state)

    values = np.zeros(length, dtype=np.float64)
    cycle_starts: list[int] = []
    cycle_durations: list[int] = []
    position = 0
    while position < length:
        if rng.random() < idle_probability:
            gap = max(8, int(round(idle_duration * (1.0 + rng.normal(0.0, 0.3)))))
            # A standing robot still shows a tiny postural sway.
            stop = min(position + gap, length)
            sway = 0.02 * np.sin(
                2.0 * np.pi * np.arange(stop - position) / max(cycle_period, 1)
            )
            values[position:stop] += sway
            position = stop
            continue
        duration = max(
            16, int(round(cycle_period * (1.0 + rng.normal(0.0, period_jitter))))
        )
        cycle = _gait_cycle(duration) * (1.0 + rng.normal(0.0, amplitude_jitter))
        stop = min(position + duration, length)
        values[position:stop] += cycle[: stop - position]
        cycle_starts.append(position)
        cycle_durations.append(duration)
        position += duration

    if noise_level > 0:
        values += rng.normal(0.0, noise_level, size=length)

    return DataSeries(
        values,
        name=name,
        metadata={
            "generator": "gait",
            "cycle_period": cycle_period,
            "cycle_starts": cycle_starts,
            "cycle_durations": cycle_durations,
        },
    )
