"""Synthetic electrocardiogram (ECG) series.

The paper's flagship example (Figure 1) is an ECG snippet in which a
fixed-length matrix profile (length 50) captures only half of a ventricular
contraction, while the variable-length analysis recovers the full heartbeat
(length ≈ 400).  This generator reproduces the essential structure of such a
recording:

* each heartbeat is a PQRST complex modelled as a sum of Gaussian bumps
  (the standard ECG phantom used e.g. by McSharry et al.);
* the beat-to-beat interval (RR interval) varies randomly, so heartbeats are
  *similar but not identical* and occur at irregular offsets;
* baseline wander (slow sinusoidal drift) and measurement noise are added.

The natural motif of the resulting series is the full heartbeat, whose length
is governed by ``beat_period`` — exactly the situation where variable-length
discovery pays off.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["generate_ecg"]

#: (amplitude, center as fraction of the beat, width as fraction of the beat)
#: for the P, Q, R, S and T waves of one heartbeat.
_PQRST_WAVES = (
    (0.12, 0.18, 0.060),   # P wave
    (-0.14, 0.34, 0.022),  # Q wave
    (1.00, 0.38, 0.018),   # R spike
    (-0.22, 0.42, 0.022),  # S wave
    (0.30, 0.62, 0.080),   # T wave
)


def _single_beat(length: int) -> np.ndarray:
    """One PQRST complex sampled over ``length`` points."""
    positions = np.linspace(0.0, 1.0, length, endpoint=False)
    beat = np.zeros(length, dtype=np.float64)
    for amplitude, center, width in _PQRST_WAVES:
        beat += amplitude * np.exp(-0.5 * ((positions - center) / width) ** 2)
    return beat


def generate_ecg(
    length: int,
    *,
    beat_period: int = 220,
    period_jitter: float = 0.08,
    amplitude_jitter: float = 0.05,
    baseline_wander: float = 0.08,
    noise_level: float = 0.02,
    random_state: np.random.Generator | int | None = None,
    name: str = "ecg",
) -> DataSeries:
    """Generate a synthetic ECG recording.

    Parameters
    ----------
    length:
        Number of points of the series.
    beat_period:
        Nominal number of points per heartbeat (the "natural" motif length).
    period_jitter:
        Relative standard deviation of the beat-to-beat interval.
    amplitude_jitter:
        Relative standard deviation of the per-beat amplitude.
    baseline_wander:
        Amplitude of the slow respiratory drift added to the signal.
    noise_level:
        Standard deviation of the white measurement noise.

    Returns
    -------
    DataSeries
        The series; ``metadata["beat_starts"]`` holds the ground-truth onset
        of every heartbeat and ``metadata["beat_period"]`` the nominal length.
    """
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    if beat_period < 8:
        raise InvalidParameterError(f"beat_period must be >= 8, got {beat_period}")
    if period_jitter < 0 or amplitude_jitter < 0 or noise_level < 0 or baseline_wander < 0:
        raise InvalidParameterError("jitter, noise and wander amplitudes must be >= 0")
    rng = _rng(random_state)

    values = np.zeros(length, dtype=np.float64)
    beat_starts: list[int] = []
    position = 0
    while position < length:
        this_period = max(8, int(round(beat_period * (1.0 + rng.normal(0.0, period_jitter)))))
        beat = _single_beat(this_period) * (1.0 + rng.normal(0.0, amplitude_jitter))
        stop = min(position + this_period, length)
        values[position:stop] += beat[: stop - position]
        beat_starts.append(position)
        position += this_period

    time_axis = np.arange(length, dtype=np.float64)
    wander = baseline_wander * np.sin(2.0 * np.pi * time_axis / (beat_period * 7.3))
    wander += 0.5 * baseline_wander * np.sin(2.0 * np.pi * time_axis / (beat_period * 2.9) + 1.0)
    values += wander
    if noise_level > 0:
        values += rng.normal(0.0, noise_level, size=length)

    return DataSeries(
        values,
        name=name,
        metadata={
            "generator": "ecg",
            "beat_period": beat_period,
            "beat_starts": beat_starts,
        },
    )
