"""Noise sources and corruption helpers used by every generator."""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["generate_noise", "add_gaussian_noise", "add_spikes"]


def _rng(random_state: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def generate_noise(
    length: int,
    *,
    scale: float = 1.0,
    kind: str = "gaussian",
    random_state: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A pure-noise series (``gaussian``, ``uniform`` or ``laplace``)."""
    if length < 1:
        raise InvalidParameterError(f"length must be >= 1, got {length}")
    if scale < 0:
        raise InvalidParameterError(f"scale must be >= 0, got {scale}")
    rng = _rng(random_state)
    if kind == "gaussian":
        return rng.normal(0.0, scale, size=length)
    if kind == "uniform":
        return rng.uniform(-scale, scale, size=length)
    if kind == "laplace":
        return rng.laplace(0.0, scale, size=length)
    raise InvalidParameterError(f"unknown noise kind {kind!r}")


def add_gaussian_noise(
    values: np.ndarray,
    noise_level: float,
    *,
    random_state: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Return ``values`` plus white noise scaled to ``noise_level``·std(values)."""
    array = np.asarray(values, dtype=np.float64)
    if noise_level < 0:
        raise InvalidParameterError(f"noise_level must be >= 0, got {noise_level}")
    if noise_level == 0:
        return np.array(array)
    rng = _rng(random_state)
    scale = noise_level * (array.std() if array.std() > 0 else 1.0)
    return array + rng.normal(0.0, scale, size=array.size)


def add_spikes(
    values: np.ndarray,
    *,
    num_spikes: int = 5,
    magnitude: float = 5.0,
    random_state: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Inject isolated spikes (used to create discord-bearing series)."""
    array = np.array(np.asarray(values, dtype=np.float64))
    if num_spikes < 0:
        raise InvalidParameterError(f"num_spikes must be >= 0, got {num_spikes}")
    if num_spikes == 0:
        return array
    rng = _rng(random_state)
    positions = rng.choice(array.size, size=min(num_spikes, array.size), replace=False)
    scale = magnitude * (array.std() if array.std() > 0 else 1.0)
    array[positions] += rng.choice([-1.0, 1.0], size=positions.size) * scale
    return array
