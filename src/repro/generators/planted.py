"""Planted-motif series with exact ground truth.

These series embed copies of a randomly drawn pattern at known offsets inside
a random-walk background.  Because the plant locations, the pattern length
and the amount of per-copy distortion are all controlled, they are the
work-horse of the correctness tests (did VALMOD find the planted pair?) and
of the accuracy/ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["PlantedMotif", "generate_planted_motifs"]


@dataclass(frozen=True)
class PlantedMotif:
    """Ground truth for one planted pattern: its length and its copy offsets."""

    length: int
    offsets: List[int]

    def as_dict(self) -> dict:
        """Plain-dict form stored in the series metadata."""
        return {"length": self.length, "offsets": list(self.offsets)}


def _smooth_pattern(length: int, rng: np.random.Generator) -> np.ndarray:
    """A smooth random pattern with a distinctive multi-bump shape."""
    time_axis = np.linspace(0.0, 1.0, length)
    pattern = np.zeros(length, dtype=np.float64)
    for _ in range(int(rng.integers(2, 5))):
        center = rng.uniform(0.1, 0.9)
        width = rng.uniform(0.05, 0.2)
        amplitude = rng.uniform(0.5, 2.0) * rng.choice([-1.0, 1.0])
        pattern += amplitude * np.exp(-0.5 * ((time_axis - center) / width) ** 2)
    pattern += 0.3 * np.sin(2.0 * np.pi * rng.uniform(1.0, 3.0) * time_axis)
    return pattern


def generate_planted_motifs(
    length: int,
    *,
    motif_lengths: tuple[int, ...] | list[int] = (64,),
    copies_per_motif: int = 2,
    distortion: float = 0.02,
    background_scale: float = 1.0,
    amplitude: float = 3.0,
    min_separation: int | None = None,
    random_state: np.random.Generator | int | None = None,
    name: str = "planted",
) -> tuple[DataSeries, List[PlantedMotif]]:
    """Build a random-walk series with planted motif copies.

    Parameters
    ----------
    length:
        Total number of points.
    motif_lengths:
        Length of each planted pattern (one distinct pattern per entry).
    copies_per_motif:
        Number of copies planted for each pattern (>= 2 so a pair exists).
    distortion:
        Standard deviation of the white noise added to every copy, relative
        to the pattern amplitude (0 = identical copies).
    background_scale:
        Step size of the random-walk background.
    amplitude:
        Scale of the planted pattern relative to the background's local std.
    min_separation:
        Minimum distance between any two plant locations; defaults to the
        largest motif length (so copies never overlap).

    Returns
    -------
    (series, ground_truth)
        The series (the ground truth is also stored in its metadata) and the
        list of :class:`PlantedMotif` records.
    """
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    motif_lengths = tuple(int(value) for value in motif_lengths)
    if not motif_lengths:
        raise InvalidParameterError("motif_lengths must not be empty")
    if any(value < 8 for value in motif_lengths):
        raise InvalidParameterError("every motif length must be >= 8")
    if copies_per_motif < 2:
        raise InvalidParameterError(
            f"copies_per_motif must be >= 2, got {copies_per_motif}"
        )
    if distortion < 0:
        raise InvalidParameterError(f"distortion must be >= 0, got {distortion}")
    longest = max(motif_lengths)
    if min_separation is None:
        min_separation = longest
    total_needed = sum(
        (max(lng, min_separation) + 1) * copies_per_motif for lng in motif_lengths
    )
    if total_needed > length:
        raise InvalidParameterError(
            f"series of length {length} is too short to plant "
            f"{copies_per_motif} copies of {len(motif_lengths)} motifs "
            f"with separation {min_separation}"
        )
    rng = _rng(random_state)

    background = np.cumsum(rng.normal(0.0, background_scale, size=length))
    values = np.array(background)
    local_scale = max(background.std(), 1e-6)

    occupied: list[tuple[int, int]] = []
    ground_truth: List[PlantedMotif] = []

    def collides(start: int, span: int) -> bool:
        return any(
            start < existing_stop + min_separation
            and existing_start - min_separation < start + span
            for existing_start, existing_stop in occupied
        )

    for motif_length in motif_lengths:
        pattern = _smooth_pattern(motif_length, rng)
        pattern = amplitude * local_scale * pattern / max(pattern.std(), 1e-9)
        offsets: List[int] = []
        attempts = 0
        while len(offsets) < copies_per_motif and attempts < 200 * copies_per_motif:
            attempts += 1
            start = int(rng.integers(0, length - motif_length))
            if collides(start, motif_length):
                continue
            copy = pattern + rng.normal(
                0.0, distortion * amplitude * local_scale, size=motif_length
            )
            # Blend the copy over the background so plant boundaries do not
            # create artificial discontinuities (which would themselves become
            # spurious motifs or discords).
            blend = np.ones(motif_length)
            ramp = max(2, motif_length // 16)
            blend[:ramp] = np.linspace(0.0, 1.0, ramp)
            blend[-ramp:] = np.linspace(1.0, 0.0, ramp)
            segment = values[start : start + motif_length]
            values[start : start + motif_length] = (
                (1 - blend) * segment + blend * (segment[0] + copy)
            )
            offsets.append(start)
            occupied.append((start, start + motif_length))
        if len(offsets) < copies_per_motif:
            raise InvalidParameterError(
                "could not place all motif copies; increase the series length "
                "or reduce min_separation"
            )
        ground_truth.append(PlantedMotif(length=motif_length, offsets=sorted(offsets)))

    series = DataSeries(
        values,
        name=name,
        metadata={
            "generator": "planted",
            "planted_motifs": [motif.as_dict() for motif in ground_truth],
        },
    )
    return series, ground_truth
