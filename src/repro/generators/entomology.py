"""Synthetic insect electrical-penetration-graph (EPG) series.

The entomology demo scenario of the paper analyses EPG recordings: the
voltage measured while an insect feeds on a plant.  Such recordings alternate
between behavioural phases — non-probing baseline, probing waveforms
(quasi-periodic oscillation bursts) and ingestion plateaus — and the motifs of
interest are the recurring probing bursts, whose duration depends on the
insect's behaviour rather than on any fixed analysis window.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.generators.noise import _rng
from repro.series.dataseries import DataSeries

__all__ = ["generate_epg"]


def generate_epg(
    length: int,
    *,
    burst_duration: int = 140,
    duration_jitter: float = 0.15,
    burst_frequency: float = 9.0,
    plateau_level: float = 1.5,
    noise_level: float = 0.08,
    random_state: np.random.Generator | int | None = None,
    name: str = "epg",
) -> DataSeries:
    """Generate an EPG-like series alternating baseline / burst / plateau phases.

    ``metadata`` records the ground-truth ``burst_starts`` and
    ``burst_durations``.
    """
    if length < 2:
        raise InvalidParameterError(f"length must be >= 2, got {length}")
    if burst_duration < 16:
        raise InvalidParameterError(f"burst_duration must be >= 16, got {burst_duration}")
    rng = _rng(random_state)

    values = np.zeros(length, dtype=np.float64)
    burst_starts: list[int] = []
    burst_durations: list[int] = []
    position = 0
    while position < length:
        # Baseline phase.
        baseline_length = int(rng.integers(burst_duration // 2, burst_duration * 2))
        position = min(position + baseline_length, length)
        if position >= length:
            break
        # Probing burst: amplitude-modulated oscillation.
        duration = max(
            16, int(round(burst_duration * (1.0 + rng.normal(0.0, duration_jitter))))
        )
        stop = min(position + duration, length)
        time_axis = np.arange(stop - position, dtype=np.float64)
        envelope = np.sin(np.pi * time_axis / max(duration - 1, 1)) ** 2
        oscillation = np.sin(
            2.0 * np.pi * burst_frequency * time_axis / duration + rng.uniform(0, 2 * np.pi)
        )
        values[position:stop] += envelope[: stop - position] * oscillation
        burst_starts.append(position)
        burst_durations.append(duration)
        position = stop
        # Occasional ingestion plateau.
        if rng.random() < 0.4 and position < length:
            plateau_length = int(rng.integers(burst_duration // 2, burst_duration))
            stop = min(position + plateau_length, length)
            ramp = np.minimum(np.arange(stop - position) / 10.0, 1.0)
            values[position:stop] += plateau_level * ramp
            position = stop

    if noise_level > 0:
        values += rng.normal(0.0, noise_level, size=length)

    return DataSeries(
        values,
        name=name,
        metadata={
            "generator": "epg",
            "burst_duration": burst_duration,
            "burst_starts": burst_starts,
            "burst_durations": burst_durations,
        },
    )
