"""Exception hierarchy for the VALMOD reproduction library.

All exceptions raised on purpose by :mod:`repro` derive from
:class:`ReproError`, so callers can catch library errors with a single
``except`` clause without masking programming errors (``TypeError`` and
friends are still allowed to propagate).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidSeriesError",
    "InvalidParameterError",
    "SubsequenceLengthError",
    "LengthRangeError",
    "EmptyResultError",
    "SerializationError",
    "ServiceError",
    "StoreError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class InvalidSeriesError(ReproError, ValueError):
    """The input data series is unusable (wrong type, NaNs, too short...)."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter value is outside its valid domain."""


class SubsequenceLengthError(InvalidParameterError):
    """A subsequence length is invalid for the given series."""

    def __init__(self, length: int, series_length: int, reason: str | None = None) -> None:
        message = f"subsequence length {length} is invalid for a series of length {series_length}"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.length = length
        self.series_length = series_length
        self.reason = reason

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``, which expects the raw fields — so
        # spell out the constructor arguments.  The engine ships per-job
        # errors across process boundaries and needs this to round-trip.
        return (type(self), (self.length, self.series_length, self.reason))


class LengthRangeError(InvalidParameterError):
    """The motif length range [min_length, max_length] is invalid."""

    def __init__(self, min_length: int, max_length: int, reason: str | None = None) -> None:
        message = f"invalid length range [{min_length}, {max_length}]"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.min_length = min_length
        self.max_length = max_length
        self.reason = reason

    def __reduce__(self):
        # See SubsequenceLengthError.__reduce__.
        return (type(self), (self.min_length, self.max_length, self.reason))


class EmptyResultError(ReproError, RuntimeError):
    """An operation that must produce a result produced none.

    Raised, for instance, when the exclusion constraints prune every candidate
    motif pair of a given length.
    """


class SerializationError(ReproError, RuntimeError):
    """A profile or VALMAP artefact could not be saved or loaded."""


class StoreError(ReproError, RuntimeError):
    """A series-store operation failed in a way a caller must see.

    Degradable conditions (corrupted blob, missing manifest) are handled
    inside :class:`repro.store.SeriesStore` as misses; this error is for
    contract violations — a digest mismatch on ingest, appending to a
    finalised upload, an unusable store root.
    """


class ServiceError(ReproError, RuntimeError):
    """A request to (or the operation of) the analysis service failed.

    Carries the HTTP status code when the failure is a server response.
    """

    def __init__(self, message: str, *, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status

    def __reduce__(self):
        # ``status`` is keyword-only; default exception pickling would drop
        # it (see SubsequenceLengthError.__reduce__ for the pattern).
        return (_rebuild_service_error, (str(self), self.status))


def _rebuild_service_error(message: str, status: int | None) -> "ServiceError":
    return ServiceError(message, status=status)
