"""repro — a reproduction of VALMOD (SIGMOD 2018): variable-length motif discovery.

The library re-implements, in pure Python/numpy, the system described in
*"VALMOD: A Suite for Easy and Exact Detection of Variable Length Motifs in
Data Series"* (Linardi, Zhu, Palpanas, Keogh — SIGMOD 2018) together with
every substrate it builds on and every baseline it is compared against.

Typical usage — the session API (validates the series once, shares the
sliding statistics across calls, caches repeated results)::

    import repro

    series = repro.generate_ecg(5000, random_state=0)
    session = repro.analyze(series)
    result = session.motifs(50, 200)        # VALMOD, in the common envelope
    best = result.best_motif()              # best variable-length motif pair
    profile = session.matrix_profile(64)    # cached: repeat calls are free
    valmap = result.value.valmap            # the VALMAP meta-data (MPn, IP, LP)

The flat entry points remain available (and now delegate shared state to
the same substrate)::

    result = repro.valmod(series, min_length=50, max_length=200)

The main entry points are re-exported at the package root:

* :func:`analyze` / :class:`Analysis` — the unified session API, with
  :class:`AnalysisRequest` / :class:`AnalysisResult` for service-style
  submission and :class:`EngineConfig` for execution knobs;
* :func:`valmod` / :class:`ValmodConfig` — the core algorithm;
* :func:`stomp`, :func:`stamp`, :func:`mass` — matrix-profile substrate;
* :func:`stomp_range`, :func:`moen`, :func:`quick_motif_range`,
  :func:`brute_force_range` — the paper's baselines;
* :func:`generate_ecg`, :func:`generate_astro`, ... — dataset substitutes;
* :class:`DataSeries` and the loaders in :mod:`repro.series`.
"""

from repro._version import __version__
from repro.api import (
    Analysis,
    AnalysisRequest,
    AnalysisResult,
    CacheConfig,
    EngineConfig,
    analyze,
)
from repro.baselines import (
    RangeDiscoveryResult,
    brute_force_range,
    moen,
    quick_motif,
    quick_motif_range,
    stomp_range,
)
from repro.core import (
    MotifSet,
    PanMatrixProfile,
    Valmap,
    ValmapCheckpoint,
    ValmodConfig,
    ValmodResult,
    VariableLengthDiscord,
    expand_motif_pair,
    lower_bound,
    rank_motif_pairs,
    skimp,
    valmod,
    valmod_with_config,
    variable_length_discords,
)
from repro.exceptions import (
    EmptyResultError,
    InvalidParameterError,
    InvalidSeriesError,
    LengthRangeError,
    ReproError,
    SerializationError,
    ServiceError,
    StoreError,
    SubsequenceLengthError,
)
from repro.engine import (
    JobOutcome,
    ParallelExecutor,
    ProfileJob,
    SerialExecutor,
    compute_profiles,
    partitioned_stomp,
)
from repro.generators import (
    generate_astro,
    generate_climate,
    generate_ecg,
    generate_epg,
    generate_gait,
    generate_planted_motifs,
    generate_random_walk,
    generate_respiration,
    generate_seismic,
    generate_smooth_random_walk,
)
from repro.matrix_profile import (
    JoinProfile,
    MatrixProfile,
    MotifPair,
    ab_join,
    ab_join_both,
    brute_force_matrix_profile,
    mass,
    mpdist,
    mpdist_profile,
    pre_scrimp,
    scrimp,
    scrimp_pp,
    stamp,
    stomp,
)
from repro.index import MotifIndex, QuerySpec, open_motif_index
from repro.series import DataSeries, as_series, load_csv, load_npy, load_text
from repro.store import SeriesStore, open_data_root
from repro.streaming import StreamingMatrixProfile

__all__ = [
    "Analysis",
    "AnalysisRequest",
    "AnalysisResult",
    "CacheConfig",
    "DataSeries",
    "EngineConfig",
    "EmptyResultError",
    "InvalidParameterError",
    "InvalidSeriesError",
    "JobOutcome",
    "JoinProfile",
    "LengthRangeError",
    "MatrixProfile",
    "MotifIndex",
    "MotifPair",
    "MotifSet",
    "PanMatrixProfile",
    "QuerySpec",
    "ParallelExecutor",
    "ProfileJob",
    "RangeDiscoveryResult",
    "SerialExecutor",
    "SeriesStore",
    "StreamingMatrixProfile",
    "ReproError",
    "SerializationError",
    "ServiceError",
    "StoreError",
    "SubsequenceLengthError",
    "Valmap",
    "ValmapCheckpoint",
    "ValmodConfig",
    "ValmodResult",
    "VariableLengthDiscord",
    "__version__",
    "ab_join",
    "ab_join_both",
    "analyze",
    "as_series",
    "brute_force_matrix_profile",
    "brute_force_range",
    "expand_motif_pair",
    "generate_astro",
    "generate_climate",
    "generate_ecg",
    "generate_epg",
    "generate_gait",
    "generate_planted_motifs",
    "generate_random_walk",
    "generate_respiration",
    "generate_seismic",
    "generate_smooth_random_walk",
    "load_csv",
    "load_npy",
    "load_text",
    "compute_profiles",
    "lower_bound",
    "mass",
    "moen",
    "open_data_root",
    "open_motif_index",
    "mpdist",
    "mpdist_profile",
    "partitioned_stomp",
    "pre_scrimp",
    "quick_motif",
    "quick_motif_range",
    "rank_motif_pairs",
    "scrimp",
    "scrimp_pp",
    "skimp",
    "stamp",
    "stomp",
    "stomp_range",
    "valmod",
    "valmod_with_config",
    "variable_length_discords",
]
