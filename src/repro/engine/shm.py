"""Shared-memory series transport for the engine's process-pool tasks.

A block task needs four O(n) float64 arrays: the (centered) series, the
window means and standard deviations, and the first-row sliding dot
products.  Shipping them inside every task payload pickles ``4·n`` doubles
per block — for a 32-block plan over a ten-million-point series that is
gigabytes of redundant copying.  :class:`SharedSeriesBuffer` instead packs
the arrays once into a single :mod:`multiprocessing.shared_memory` segment
and the payload carries only the segment *name* plus an offset table
(:class:`SharedArraysHandle`, a few hundred bytes).  Workers attach by
name, copy the arrays out once, and cache the copies per process so a
reused pool pays the transfer cost once per segment, not once per task.

Availability and fallback
-------------------------
Shared memory is not guaranteed: ``/dev/shm`` may be absent or full,
seccomp sandboxes may refuse the required syscalls, and exotic platforms
lack the module entirely.  :meth:`SharedSeriesBuffer.create` therefore
returns ``None`` instead of raising when the segment cannot be created, and
the engine falls back to pickling the arrays into each payload — slower,
never wrong.  Workers attach lazily inside the task, so a segment that
exists in the parent but cannot be opened in a child degrades the same way
(the handle resolution raises and the caller's payload fallback applies
before dispatch, not after).

Lifetime: the creating process owns the segment — ``close()`` + ``unlink()``
after the pool map returns (the context manager does both).  Workers never
hold a mapping past the attach call itself: :func:`attach_arrays` copies
the arrays out and closes its attachment immediately, so the data it
returns is decoupled from the segment's fate (on Linux an unlinked segment
persists until the last mapping closes, so a mid-copy unlink is safe too).
Resource-tracker bookkeeping stays with the creator: pool workers talk to
the same tracker process, where the attach-side registration is idempotent
and ``unlink()`` performs the single matching unregister (see the note in
:func:`attach_arrays`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError

try:  # pragma: no cover - the import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SharedArraysHandle",
    "SharedSeriesBuffer",
    "attach_arrays",
    "shared_memory_available",
]

#: Per-process cache of attached segments: segment name -> private copies of
#: the packed arrays.  An engine call uses exactly one segment for all its
#: tasks, so two entries (the active segment plus one straggler from a call
#: that just ended) cover the access pattern while bounding worker memory to
#: ~two packed copies; anything larger just pins dead series.
_ATTACH_CACHE: "Dict[str, Dict[str, np.ndarray]]" = {}
_ATTACH_CACHE_LIMIT = 2


@dataclass(frozen=True)
class SharedArraysHandle:
    """Picklable address of one packed segment: name plus offset table.

    ``fields`` maps each array key to ``(element_offset, element_count)``
    within the float64-typed segment.
    """

    shm_name: str
    fields: Tuple[Tuple[str, int, int], ...]

    @property
    def total_elements(self) -> int:
        """Summed element count of every packed array."""
        return sum(count for _, _, count in self.fields)


def shared_memory_available() -> bool:
    """Whether this interpreter can create shared-memory segments at all.

    ``True`` means the module imported; creation can still fail at runtime
    (no ``/dev/shm`` space, sandbox policy), which
    :meth:`SharedSeriesBuffer.create` reports by returning ``None``.
    """
    return _shared_memory is not None


class SharedSeriesBuffer:
    """One shared-memory segment packing several 1-D float64 arrays.

    Create with :meth:`create` (returns ``None`` when shared memory is
    unavailable), hand :attr:`handle` to the task payloads, and
    ``close()``/``unlink()`` — or use it as a context manager — once the
    executor's ``map`` has returned.
    """

    def __init__(self, shm, handle: SharedArraysHandle) -> None:
        self._shm = shm
        self._handle = handle
        self._released = False

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedSeriesBuffer | None":
        """Pack ``arrays`` into a fresh segment; ``None`` when impossible.

        Every value must be a 1-D float64 array (the only shape the engine
        ships).  A wrong shape is a programming error and raises; an
        environment that cannot host shared memory is an expected condition
        and yields ``None`` so the caller falls back to pickled payloads.
        """
        if _shared_memory is None:
            return None
        if not arrays:
            raise InvalidParameterError("SharedSeriesBuffer needs at least one array")
        fields = []
        offset = 0
        flat = []
        for key, value in arrays.items():
            array = np.ascontiguousarray(value, dtype=np.float64)
            if array.ndim != 1:
                raise InvalidParameterError(
                    f"shared array {key!r} must be 1-D, got shape {array.shape}"
                )
            fields.append((str(key), offset, array.size))
            offset += array.size
            flat.append(array)
        try:
            shm = _shared_memory.SharedMemory(create=True, size=max(1, offset * 8))
        except (OSError, PermissionError, ValueError):
            # No /dev/shm, quota exhausted, sandbox policy: fall back.
            return None
        packed = np.ndarray((offset,), dtype=np.float64, buffer=shm.buf)
        position = 0
        for array in flat:
            packed[position : position + array.size] = array
            position += array.size
        return cls(shm, SharedArraysHandle(shm_name=shm.name, fields=tuple(fields)))

    @property
    def handle(self) -> SharedArraysHandle:
        """The picklable handle task payloads carry instead of the arrays."""
        return self._handle

    @property
    def name(self) -> str:
        """The segment name (workers attach by it)."""
        return self._handle.shm_name

    def close(self) -> None:
        """Unmap the creating process's view (idempotent)."""
        if not self._released:
            self._shm.close()
            self._released = True

    def unlink(self) -> None:
        """Remove the segment; safe to call after :meth:`close`."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass

    def __enter__(self) -> "SharedSeriesBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()


def attach_arrays(handle: SharedArraysHandle) -> Dict[str, np.ndarray]:
    """Read the packed arrays of ``handle``, cached per process.

    Called inside worker processes (and in the degraded in-process case —
    attaching to a segment the same process created works identically).
    The arrays are **private read-only copies**: the segment is attached,
    copied out, and closed again immediately, so the returned arrays have
    no lifetime coupling to the segment (the creator may unlink it, the
    cache may evict the entry — nothing a caller holds ever dangles;
    ``SharedMemory.__del__`` closes mappings on collection, so zero-copy
    views would silently alias recycled memory).  One copy per segment per
    process replaces one pickle per *task*, which is where the transport
    wins.

    Raises whatever the platform raises when the segment cannot be opened;
    callers decide the fallback *before* dispatch, so an attach failure here
    means the segment really vanished and surfacing the error is correct.
    """
    if _shared_memory is None:
        raise InvalidParameterError(
            "multiprocessing.shared_memory is unavailable in this interpreter"
        )
    cached = _ATTACH_CACHE.get(handle.shm_name)
    if cached is None:
        # NOTE on the resource tracker: CPython (< 3.13) registers every
        # SharedMemory — attachments included — with the tracker.  Pool
        # workers share the parent's tracker process (the fd travels with
        # fork/spawn prep data), where registration is idempotent and the
        # creator's unlink() performs the single matching unregister, so no
        # explicit deregistration is needed here (an extra unregister would
        # make the creator's unlink KeyError inside the tracker).
        shm = _shared_memory.SharedMemory(name=handle.shm_name, create=False)
        try:
            packed = np.array(
                np.ndarray(
                    (handle.total_elements,), dtype=np.float64, buffer=shm.buf
                )
            )
        finally:
            shm.close()
        cached = {}
        for key, offset, count in handle.fields:
            array = packed[offset : offset + count]
            array.flags.writeable = False
            cached[key] = array
        while len(_ATTACH_CACHE) >= _ATTACH_CACHE_LIMIT:
            _ATTACH_CACHE.pop(next(iter(_ATTACH_CACHE)))
        _ATTACH_CACHE[handle.shm_name] = cached
    return dict(cached)
