"""Shared-memory series transport for the engine's process-pool tasks.

A block task needs four O(n) float64 arrays: the (centered) series, the
window means and standard deviations, and the first-row sliding dot
products.  Shipping them inside every task payload pickles ``4·n`` doubles
per block — for a 32-block plan over a ten-million-point series that is
gigabytes of redundant copying.  :class:`SharedSeriesBuffer` instead packs
the arrays once into a single :mod:`multiprocessing.shared_memory` segment
and the payload carries only the segment *name* plus an offset table
(:class:`SharedArraysHandle`, a few hundred bytes).  Workers attach by
name, copy the arrays out once, and cache the copies per process so a
reused pool pays the transfer cost once per segment, not once per task.

Availability and fallback
-------------------------
Shared memory is not guaranteed: ``/dev/shm`` may be absent or full,
seccomp sandboxes may refuse the required syscalls, and exotic platforms
lack the module entirely.  :meth:`SharedSeriesBuffer.create` therefore
returns ``None`` instead of raising when the segment cannot be created, and
the engine falls back to pickling the arrays into each payload — slower,
never wrong.  Workers attach lazily inside the task, so a segment that
exists in the parent but cannot be opened in a child degrades the same way
(the handle resolution raises and the caller's payload fallback applies
before dispatch, not after).

Lifetime: the creating process owns the segment — ``close()`` + ``unlink()``
after the pool map returns (the context manager does both).  Workers never
hold a mapping past the attach call itself: :func:`attach_arrays` copies
the arrays out and closes its attachment immediately, so the data it
returns is decoupled from the segment's fate (on Linux an unlinked segment
persists until the last mapping closes, so a mid-copy unlink is safe too).
Resource-tracker bookkeeping stays with the creator: pool workers talk to
the same tracker process, where the attach-side registration is idempotent
and ``unlink()`` performs the single matching unregister (see the note in
:func:`attach_arrays`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from repro import obs
from repro.exceptions import InvalidParameterError, StoreError

try:  # pragma: no cover - the import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SharedArraysHandle",
    "BlobHandle",
    "SharedSeriesBuffer",
    "SharedSegmentPool",
    "attach_arrays",
    "attach_blob",
    "shared_memory_available",
    "ATTACH_CACHE_MAX_BYTES",
    "BLOB_CACHE_MAX_BYTES",
    "DEFAULT_SEGMENT_POOL_MAX_BYTES",
]

#: Byte cap of the per-process attach cache.  Digest-keyed segments live for
#: a whole :class:`~repro.api.Analysis` session, so a worker may legitimately
#: hold copies of several hot series at once (one per session it serves) —
#: an entry *count* would evict live series under multi-session traffic while
#: a byte bound keeps worker memory proportional to the data actually hot.
#: 256 MiB holds ~8 packed four-million-point series.
ATTACH_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: Per-process cache of attached segments: segment name -> private copies of
#: the packed arrays, evicted oldest-first once the byte cap is exceeded
#: (the entry being inserted always stays — evicting the arrays the current
#: task is about to use would thrash).
_ATTACH_CACHE: "Dict[str, Dict[str, np.ndarray]]" = {}
_ATTACH_CACHE_BYTES: "Dict[str, int]" = {}

#: Default byte cap of a :class:`SharedSegmentPool`.  A session sweeping
#: many window lengths registers one segment per window; without a bound
#: that is an unbounded claim on /dev/shm.  256 MiB of packed segments
#: (~4 arrays x 8 bytes x n per window) is far beyond the interactive
#: pattern while keeping a long-lived service session finite.
DEFAULT_SEGMENT_POOL_MAX_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class SharedArraysHandle:
    """Picklable address of one packed segment: name plus offset table.

    ``fields`` maps each array key to ``(element_offset, element_count)``
    within the float64-typed segment.
    """

    shm_name: str
    fields: Tuple[Tuple[str, int, int], ...]

    @property
    def total_elements(self) -> int:
        """Summed element count of every packed array."""
        return sum(count for _, _, count in self.fields)


#: Byte cap of the per-process blob attach cache.  The cached arrays are
#: file-backed memory maps, so the "bytes" here are address space and page
#: cache, not anonymous memory — the cap exists so a worker serving
#: thousands of series over its lifetime cannot accumulate an unbounded
#: set of open mappings.
BLOB_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: Per-process cache of attached store blobs, keyed by content digest.
#: Content-addressing makes the cache trivially correct: a digest's bytes
#: never change, so an entry can only ever be stale by *absence*.
_BLOB_CACHE: "Dict[str, np.ndarray]" = {}

_SHM_METRICS = obs.scope("engine.shm")
_BLOB_ATTACH_HITS = _SHM_METRICS.counter("blob_attach_hits")
_BLOB_ATTACH_MISSES = _SHM_METRICS.counter("blob_attach_misses")
_BLOB_VERIFY_FAILURES = _SHM_METRICS.counter("blob_verify_failures")
_ARRAY_ATTACH_HITS = _SHM_METRICS.counter("array_attach_hits")
_ARRAY_ATTACH_MISSES = _SHM_METRICS.counter("array_attach_misses")
_SEGMENT_HITS = _SHM_METRICS.counter("segment_pool_hits")
_SEGMENT_CREATES = _SHM_METRICS.counter("segment_pool_creates")
_SEGMENT_EVICTIONS = _SHM_METRICS.counter("segment_pool_evictions")


@dataclass(frozen=True)
class BlobHandle:
    """Picklable address of one store blob: the zero-copy series transport.

    A :class:`~repro.store.SeriesStore` blob is already the perfect worker
    payload — a raw little-endian float64 file whose sha1 *is* the series
    digest, so any process that can see the filesystem can map it read-only
    and verify it independently.  The handle carries the blob ``path``, the
    content ``digest`` and the element ``length``; workers resolve it with
    :func:`attach_blob`.  Unlike :class:`SharedArraysHandle` nothing is
    packed, copied or unlinked: the store owns the file, the handle merely
    names it.

    Mint handles with :meth:`repro.store.SeriesStore.handle`.
    """

    path: str
    digest: str
    length: int

    @property
    def nbytes(self) -> int:
        """Size of the blob in bytes (8 bytes per float64 element)."""
        return int(self.length) * 8


def attach_blob(handle: BlobHandle, *, verify: bool = True) -> np.ndarray:
    """Memory-map the blob of ``handle`` read-only, cached per process.

    The returned array is a **read-only view over the file mapping** — no
    copy is made in the attaching process, which is the whole point of the
    transport: N workers over one series share the kernel's page cache
    instead of holding N pickled copies.  ``verify=True`` (default) hashes
    the mapped bytes once per process and raises
    :class:`~repro.exceptions.StoreError` on a digest mismatch, keeping the
    store's self-verifying contract across the process boundary.

    A vanished or truncated blob raises :class:`StoreError` too: handles
    are built from a live manifest entry immediately before dispatch, so a
    failure here means the blob really disappeared underneath the job (an
    LRU eviction racing the dispatch) and surfacing it beats computing on
    garbage.  On Linux an *unlinked* blob with a live mapping stays valid,
    so cached attachments never dangle.
    """
    cached = _BLOB_CACHE.get(handle.digest)
    if cached is not None and cached.size == int(handle.length):
        _BLOB_ATTACH_HITS.inc()
        return cached
    _BLOB_ATTACH_MISSES.inc()
    try:
        mapped = np.memmap(handle.path, dtype="<f8", mode="r")
    except (OSError, ValueError) as error:
        raise StoreError(
            f"cannot attach store blob {handle.path!r} "
            f"(digest {handle.digest}): {error}"
        ) from error
    if mapped.size != int(handle.length):
        raise StoreError(
            f"store blob {handle.path!r} holds {mapped.size} elements, "
            f"expected {handle.length} — truncated or corrupted"
        )
    if verify:
        observed = hashlib.sha1(memoryview(mapped).cast("B")).hexdigest()
        if observed != handle.digest:
            _BLOB_VERIFY_FAILURES.inc()
            raise StoreError(
                f"store blob {handle.path!r} hashes to {observed}, "
                f"expected {handle.digest} — refusing corrupted data"
            )
    array = mapped.view(np.ndarray)
    array.flags.writeable = False
    total = sum(entry.size * 8 for entry in _BLOB_CACHE.values()) + array.nbytes
    while _BLOB_CACHE and total > BLOB_CACHE_MAX_BYTES:
        evicted = next(iter(_BLOB_CACHE))
        total -= _BLOB_CACHE.pop(evicted).size * 8
    _BLOB_CACHE[handle.digest] = array
    return array


def shared_memory_available() -> bool:
    """Whether this interpreter can create shared-memory segments at all.

    ``True`` means the module imported; creation can still fail at runtime
    (no ``/dev/shm`` space, sandbox policy), which
    :meth:`SharedSeriesBuffer.create` reports by returning ``None``.
    """
    return _shared_memory is not None


class SharedSeriesBuffer:
    """One shared-memory segment packing several 1-D float64 arrays.

    Create with :meth:`create` (returns ``None`` when shared memory is
    unavailable), hand :attr:`handle` to the task payloads, and
    ``close()``/``unlink()`` — or use it as a context manager — once the
    executor's ``map`` has returned.
    """

    def __init__(self, shm, handle: SharedArraysHandle) -> None:
        self._shm = shm
        self._handle = handle
        self._released = False

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedSeriesBuffer | None":
        """Pack ``arrays`` into a fresh segment; ``None`` when impossible.

        Every value must be a 1-D float64 array (the only shape the engine
        ships).  A wrong shape is a programming error and raises; an
        environment that cannot host shared memory is an expected condition
        and yields ``None`` so the caller falls back to pickled payloads.
        """
        if _shared_memory is None:
            return None
        if not arrays:
            raise InvalidParameterError("SharedSeriesBuffer needs at least one array")
        fields = []
        offset = 0
        flat = []
        for key, value in arrays.items():
            array = np.ascontiguousarray(value, dtype=np.float64)
            if array.ndim != 1:
                raise InvalidParameterError(
                    f"shared array {key!r} must be 1-D, got shape {array.shape}"
                )
            fields.append((str(key), offset, array.size))
            offset += array.size
            flat.append(array)
        try:
            shm = _shared_memory.SharedMemory(create=True, size=max(1, offset * 8))
        except (OSError, PermissionError, ValueError):
            # No /dev/shm, quota exhausted, sandbox policy: fall back.
            return None
        packed = np.ndarray((offset,), dtype=np.float64, buffer=shm.buf)
        position = 0
        for array in flat:
            packed[position : position + array.size] = array
            position += array.size
        return cls(shm, SharedArraysHandle(shm_name=shm.name, fields=tuple(fields)))

    @property
    def handle(self) -> SharedArraysHandle:
        """The picklable handle task payloads carry instead of the arrays."""
        return self._handle

    @property
    def name(self) -> str:
        """The segment name (workers attach by it)."""
        return self._handle.shm_name

    def close(self) -> None:
        """Unmap the creating process's view (idempotent)."""
        if not self._released:
            self._shm.close()
            self._released = True

    def unlink(self) -> None:
        """Remove the segment; safe to call after :meth:`close`."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass

    def __enter__(self) -> "SharedSeriesBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()


class SharedSegmentPool:
    """Parent-side registry of shared-memory segments keyed by content.

    One ``partitioned_stomp`` call used to create a fresh uniquely-named
    segment and unlink it when its ``map`` returned — so the per-worker
    attach cache (keyed by segment *name*) could never hit across calls,
    and every call on the same series re-paid the pack **and** the
    per-worker copy.  The pool gives segments an identity that outlives a
    call: the owner (an :class:`~repro.api.Analysis` session) keys them by
    series content digest plus window, :meth:`acquire` returns the live
    segment on every later call with the same key, and the segments are
    unlinked exactly once — on :meth:`close`, i.e. when the session closes.

    Creation failures keep the engine's fallback contract:
    :meth:`acquire` returns ``None`` when the platform cannot host the
    segment, and the caller ships pickled arrays instead.  Thread-safe —
    the service layer runs sessions from executor threads.

    ``max_bytes`` bounds the pooled payload bytes (LRU eviction beyond it,
    the segment just acquired always stays): a session sweeping hundreds of
    window lengths must not turn into an unbounded /dev/shm claim.
    """

    def __init__(self, max_bytes: int | None = DEFAULT_SEGMENT_POOL_MAX_BYTES) -> None:
        if max_bytes is not None and int(max_bytes) < 1:
            raise InvalidParameterError(f"max_bytes must be >= 1, got {max_bytes}")
        self._segments: "OrderedDict[str, SharedSeriesBuffer]" = OrderedDict()
        self._max_bytes = None if max_bytes is None else int(max_bytes)
        self._lock = threading.Lock()
        self._closed = False

    def acquire(
        self,
        key: str,
        arrays_factory: Callable[[], Mapping[str, np.ndarray]],
    ) -> "SharedSeriesBuffer | None":
        """The segment registered under ``key``, created on first use.

        ``arrays_factory`` is only called when the segment does not exist
        yet (packing is the cost the pool exists to amortise).  Returns
        ``None`` when shared memory is unavailable; the failure is not
        cached, so a transient condition (``/dev/shm`` momentarily full)
        heals on a later call.
        """
        evicted: list = []
        with self._lock:
            if self._closed:
                raise InvalidParameterError("this segment pool is already closed")
            buffer = self._segments.get(key)
            if buffer is None:
                buffer = SharedSeriesBuffer.create(arrays_factory())
                if buffer is None:
                    return None
                self._segments[key] = buffer
                _SEGMENT_CREATES.inc()
            else:
                self._segments.move_to_end(key)
                _SEGMENT_HITS.inc()
            if self._max_bytes is not None:
                total = sum(
                    segment.handle.total_elements * 8
                    for segment in self._segments.values()
                )
                while total > self._max_bytes and len(self._segments) > 1:
                    _, coldest = self._segments.popitem(last=False)
                    total -= coldest.handle.total_elements * 8
                    evicted.append(coldest)
                    _SEGMENT_EVICTIONS.inc()
        # Unlink outside the pool lock.  NOTE: the caller that last used an
        # evicted segment has either finished its map() (segments are only
        # touched between acquire() and the executor map returning) or is
        # the current caller — whose segment is never evicted.
        for segment in evicted:
            segment.close()
            segment.unlink()
        return buffer

    def release(self, key: str) -> None:
        """Unlink one segment early (idempotent)."""
        with self._lock:
            buffer = self._segments.pop(key, None)
        if buffer is not None:
            buffer.close()
            buffer.unlink()

    def close(self) -> None:
        """Unlink every owned segment (idempotent, the owner's last word)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._closed = True
        for buffer in segments:
            buffer.close()
            buffer.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    def keys(self) -> list:
        """The registered keys (for stats and tests)."""
        with self._lock:
            return list(self._segments)

    @property
    def total_bytes(self) -> int:
        """Summed payload bytes of every live segment."""
        with self._lock:
            return sum(
                buffer.handle.total_elements * 8
                for buffer in self._segments.values()
            )

    def __enter__(self) -> "SharedSegmentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_arrays(handle: SharedArraysHandle) -> Dict[str, np.ndarray]:
    """Read the packed arrays of ``handle``, cached per process.

    Called inside worker processes (and in the degraded in-process case —
    attaching to a segment the same process created works identically).
    The arrays are **private read-only copies**: the segment is attached,
    copied out, and closed again immediately, so the returned arrays have
    no lifetime coupling to the segment (the creator may unlink it, the
    cache may evict the entry — nothing a caller holds ever dangles;
    ``SharedMemory.__del__`` closes mappings on collection, so zero-copy
    views would silently alias recycled memory).  One copy per segment per
    process replaces one pickle per *task*, which is where the transport
    wins.

    Raises whatever the platform raises when the segment cannot be opened;
    callers decide the fallback *before* dispatch, so an attach failure here
    means the segment really vanished and surfacing the error is correct.
    """
    if _shared_memory is None:
        raise InvalidParameterError(
            "multiprocessing.shared_memory is unavailable in this interpreter"
        )
    cached = _ATTACH_CACHE.get(handle.shm_name)
    if cached is not None:
        _ARRAY_ATTACH_HITS.inc()
    else:
        _ARRAY_ATTACH_MISSES.inc()
        # NOTE on the resource tracker: CPython (< 3.13) registers every
        # SharedMemory — attachments included — with the tracker.  Pool
        # workers share the parent's tracker process (the fd travels with
        # fork/spawn prep data), where registration is idempotent and the
        # creator's unlink() performs the single matching unregister, so no
        # explicit deregistration is needed here (an extra unregister would
        # make the creator's unlink KeyError inside the tracker).
        shm = _shared_memory.SharedMemory(name=handle.shm_name, create=False)
        try:
            packed = np.array(
                np.ndarray(
                    (handle.total_elements,), dtype=np.float64, buffer=shm.buf
                )
            )
        finally:
            shm.close()
        cached = {}
        for key, offset, count in handle.fields:
            array = packed[offset : offset + count]
            array.flags.writeable = False
            cached[key] = array
        size = int(packed.nbytes)
        total = sum(_ATTACH_CACHE_BYTES.values()) + size
        while _ATTACH_CACHE and total > ATTACH_CACHE_MAX_BYTES:
            evicted = next(iter(_ATTACH_CACHE))
            _ATTACH_CACHE.pop(evicted)
            total -= _ATTACH_CACHE_BYTES.pop(evicted)
        _ATTACH_CACHE[handle.shm_name] = cached
        _ATTACH_CACHE_BYTES[handle.shm_name] = size
    return dict(cached)
