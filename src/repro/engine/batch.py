"""Batch execution of many matrix-profile jobs through one executor.

The range algorithms (``stomp-range``, SKIMP) and the harness all share
the same shape of work: *many independent profile computations over the
same or different series*.  :func:`compute_profiles` gives that shape a
first-class API:

* a :class:`ProfileJob` names one unit of work — a series plus either a
  single ``window`` (one :class:`~repro.matrix_profile.profile.MatrixProfile`)
  or a list of ``lengths`` (a dict mapping each length to its profile);
* jobs are dispatched through one
  :class:`~repro.engine.executor.Executor` — serially in-process, or one
  job per process-pool task when the executor is parallel;
* results come back as :class:`JobOutcome` objects **in job order**; a
  job that raises records its exception in ``outcome.error`` without
  affecting the other jobs (``outcome.unwrap()`` re-raises it).

``SlidingStats`` reuse: when jobs run serially, a per-batch cache keyed
on series identity shares one :class:`~repro.stats.sliding.SlidingStats`
(one pair of prefix-sum arrays) across every job on the same series —
this is what makes a many-lengths batch over one series cost one ``O(n)``
statistics pass instead of one per length.

Series transport
----------------
``job.series`` also accepts the engine's picklable handles instead of an
array: a :class:`~repro.engine.shm.BlobHandle` (a store blob the worker
memory-maps zero-copy) or a :class:`~repro.engine.shm.SharedArraysHandle`
packing just ``{"values": ...}``.  Handle-backed payloads stay a few
hundred bytes regardless of series length, so a thousand-job fan-out over
one ten-million-point series ships kilobytes instead of eighty gigabytes.
Array-backed jobs that *share* one series object are rewritten onto this
transport automatically before a process-pool dispatch (see
``_prepare_parallel_tasks``) — the per-job O(n) pickle the parallel path
used to pay was a bug, not a contract.  Workers resolve a handle once per
process (the attach caches in :mod:`repro.engine.shm`) and share the
``O(n)`` sliding statistics across jobs on the same handle through a
small per-process cache.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from repro import obs
from repro.engine.executor import Executor, resolve_executor
from repro.engine.partition import DEFAULT_RESEED_INTERVAL, partitioned_stomp
from repro.engine.shm import (
    BlobHandle,
    SharedArraysHandle,
    SharedSeriesBuffer,
    attach_arrays,
    attach_blob,
)
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.ab_join import JoinProfile, join_sweep_rows
from repro.matrix_profile.distance_profile import distance_profile
from repro.matrix_profile.profile import MatrixProfile
from repro.series.dataseries import DataSeries
from repro.series.validation import validate_series
from repro.stats.sliding import SlidingStats

__all__ = ["ProfileJob", "JobOutcome", "compute_profiles"]

#: Entry cap of the per-process stats cache for handle-backed jobs.  A
#: worker typically serves many jobs over few distinct series; a handful of
#: slots captures that reuse while bounding worker memory (two prefix-sum
#: arrays per entry).
_WORKER_STATS_MAX_ENTRIES = 4

#: Per-process ``SlidingStats`` cache keyed by handle identity (blob digest
#: or segment name).  Only handle-backed series use it: handles have a
#: stable cross-pickle identity, ``id()`` of an unpickled array does not.
_WORKER_STATS: "OrderedDict[tuple, SlidingStats]" = OrderedDict()

_ENGINE_METRICS = obs.scope("engine")
_JOBS = _ENGINE_METRICS.counter("jobs")
_JOB_QUEUE_SECONDS = _ENGINE_METRICS.histogram("job_queue_seconds")


@dataclass(frozen=True, eq=False)
class ProfileJob:
    """One unit of batch work: a series plus a window or a length list.

    Exactly one of ``window`` / ``lengths`` must be given.  ``name`` is
    carried through to the outcome for the caller's bookkeeping and
    defaults to the series name when the series is a
    :class:`~repro.series.DataSeries`.

    ``query_offset`` (only with ``window=``) narrows the job from a full
    matrix profile to the *distance profile* of one query offset — a single
    MASS call.  VALMOD's per-length exact recomputations are exactly this
    shape: many independent single-offset profiles at one length, which the
    batch layer can fan out across workers.  The outcome's result is then a
    plain ``numpy`` distance array (exclusion zone applied when
    ``exclusion_radius`` is set) instead of a
    :class:`~repro.matrix_profile.profile.MatrixProfile`.

    ``series_b`` (only with ``window=``, incompatible with
    ``query_offset``) turns the job into an **AB-join**: the nearest
    neighbour in ``series_b`` of each query subsequence of ``series``.
    ``row_range=(start, stop)`` optionally restricts the join to that
    block of query rows — :func:`repro.matrix_profile.ab_join.ab_join`'s
    ``engine=`` path plans one such job per A-row block, which is how
    cross-series joins scale across cores like self-joins do.  Both series
    fields accept the handle transport, and the outcome's result is a
    :class:`~repro.matrix_profile.ab_join.JoinProfile` covering the
    requested rows.

    ``eq=False``: the generated field-tuple ``__eq__`` would compare the
    series array element-wise (ambiguous truth value) and make jobs
    unhashable; identity semantics are the useful ones for work items.
    """

    series: object
    window: int | None = None
    lengths: Tuple[int, ...] | None = None
    query_offset: int | None = None
    exclusion_radius: int | None = None
    block_size: int | None = None
    kernel: str | None = None
    reseed_interval: int = DEFAULT_RESEED_INTERVAL
    name: str | None = None
    series_b: object = None
    row_range: Tuple[int, int] | None = None
    #: Observability stamp ``(obs_payload, enqueued_at)`` — set by the
    #: dispatcher just before a process-pool map so the worker can adopt
    #: the parent's trace/metrics context (never set by callers).
    trace: object = None

    def __post_init__(self) -> None:
        if (self.window is None) == (self.lengths is None):
            raise InvalidParameterError(
                "a ProfileJob needs exactly one of window= or lengths="
            )
        if self.query_offset is not None:
            if self.window is None:
                raise InvalidParameterError(
                    "query_offset= requires a single window= job"
                )
            object.__setattr__(self, "query_offset", int(self.query_offset))
        if self.series_b is not None:
            if self.window is None:
                raise InvalidParameterError("series_b= requires a single window= job")
            if self.query_offset is not None:
                raise InvalidParameterError(
                    "series_b= (an AB-join job) is incompatible with query_offset="
                )
        if self.row_range is not None:
            if self.series_b is None:
                raise InvalidParameterError(
                    "row_range= only applies to AB-join jobs (series_b=)"
                )
            object.__setattr__(
                self, "row_range", (int(self.row_range[0]), int(self.row_range[1]))
            )
        if self.lengths is not None:
            lengths = tuple(int(length) for length in self.lengths)
            if not lengths:
                raise InvalidParameterError("lengths must not be empty")
            object.__setattr__(self, "lengths", lengths)
        if self.name is None and isinstance(self.series, DataSeries):
            object.__setattr__(self, "name", self.series.name)

    @property
    def windows(self) -> Tuple[int, ...]:
        """The window lengths this job evaluates (singleton for window jobs)."""
        return (self.window,) if self.window is not None else self.lengths


@dataclass(frozen=True)
class JobOutcome:
    """Result slot of one job, in the order the jobs were submitted.

    ``result`` is a :class:`MatrixProfile` for ``window=`` jobs, a dict of
    them for ``lengths=`` jobs, a plain distance array for
    ``query_offset=`` jobs, and a
    :class:`~repro.matrix_profile.ab_join.JoinProfile` for ``series_b=``
    (AB-join) jobs.
    """

    index: int
    job: ProfileJob
    result: Union[
        MatrixProfile, Dict[int, MatrixProfile], np.ndarray, JoinProfile, None
    ] = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        """True when the job completed without raising."""
        return self.error is None

    def unwrap(self) -> Union[MatrixProfile, Dict[int, MatrixProfile], np.ndarray]:
        """The job's result, re-raising the job's exception if it failed."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


def _profile_for_length(
    values: np.ndarray,
    stats: SlidingStats,
    window: int,
    exclusion_radius: int | None,
    block_size: int | None,
    kernel: str | None,
    reseed_interval: int,
) -> MatrixProfile:
    """One serial blocked profile computation (runs inside a worker).

    Delegates to :func:`~repro.engine.partition.partitioned_stomp` with a
    serial executor — job-level parallelism (one process per job) is the
    batch layer's concern, so the per-job computation must not spawn
    nested pools.
    """
    return partitioned_stomp(
        values,
        window,
        executor="serial",
        block_size=block_size,
        kernel=kernel,
        reseed_interval=reseed_interval,
        exclusion_radius=exclusion_radius,
        stats=stats,
    )


def _series_cache_key(series: object) -> tuple:
    """A stats-cache key that survives pickling for handle-backed series.

    Handles carry a stable identity (blob digest, segment name); plain
    arrays only have ``id()``, which is meaningful within one process but
    not across a pool dispatch — which is fine, because plain arrays only
    hit the *per-batch* cache of the serial path.
    """
    if isinstance(series, BlobHandle):
        return ("blob", series.digest)
    if isinstance(series, SharedArraysHandle):
        return ("shm", series.shm_name)
    return ("id", id(series))


def _resolve_series(series: object) -> np.ndarray:
    """Materialise ``job.series`` into a validated float64 array.

    Handles resolve through the per-process attach caches in
    :mod:`repro.engine.shm`, so a worker maps each distinct blob/segment
    once no matter how many jobs reference it.
    """
    if isinstance(series, BlobHandle):
        return validate_series(attach_blob(series))
    if isinstance(series, SharedArraysHandle):
        return validate_series(attach_arrays(series)["values"])
    return validate_series(series)


def _worker_stats(key: tuple, values: np.ndarray) -> SlidingStats:
    """Per-process ``SlidingStats`` for a handle-backed series (LRU)."""
    stats = _WORKER_STATS.get(key)
    if stats is None:
        stats = SlidingStats(values)
        while len(_WORKER_STATS) >= _WORKER_STATS_MAX_ENTRIES:
            _WORKER_STATS.popitem(last=False)
        _WORKER_STATS[key] = stats
    else:
        _WORKER_STATS.move_to_end(key)
    return stats


def _stats_for(
    series: object,
    values: np.ndarray,
    stats_cache: Dict[tuple, SlidingStats] | None,
) -> SlidingStats:
    """Shared ``SlidingStats`` for one job series (batch or worker cache)."""
    key = _series_cache_key(series)
    if key[0] == "id":
        stats = None
        if stats_cache is not None:
            stats = stats_cache.get(key)
        if stats is None:
            stats = SlidingStats(values)
            if stats_cache is not None:
                stats_cache[key] = stats
        return stats
    # Handle-backed series: the per-process cache makes the O(n)
    # prefix sums a once-per-worker cost across pool dispatches.
    return _worker_stats(key, values)


def _run_job(
    job: ProfileJob,
    stats_cache: Dict[tuple, SlidingStats] | None = None,
) -> Tuple[str, object]:
    """Run one job to a ``("ok", result)`` / ``("error", exc)`` pair.

    Errors are captured *inside* the worker so one failing job cannot
    poison a process-pool map; the pair representation (rather than the
    exception itself) keeps the transport picklable either way.
    """
    try:
        values = _resolve_series(job.series)
        stats = _stats_for(job.series, values, stats_cache)
        if job.series_b is not None:
            # AB-join job: the nearest neighbour in series_b of each query
            # row of series (optionally one row block of the join).
            values_b = _resolve_series(job.series_b)
            stats_b = _stats_for(job.series_b, values_b, stats_cache)
            if job.row_range is not None:
                start, stop = job.row_range
            else:
                start, stop = 0, values.size - job.window + 1
            return (
                "ok",
                join_sweep_rows(
                    values,
                    values_b,
                    job.window,
                    start,
                    stop,
                    stats_a=stats,
                    stats_b=stats_b,
                    kernel=job.kernel,
                    reseed_interval=job.reseed_interval,
                ),
            )
        if job.query_offset is not None:
            # Single-offset job: one distance profile (a MASS call), not a
            # full matrix profile.  No stats.forget(): many such jobs share
            # one window, so the cached per-window statistics are the point.
            return (
                "ok",
                distance_profile(
                    values,
                    job.query_offset,
                    job.window,
                    stats=stats,
                    exclusion_radius=job.exclusion_radius,
                    apply_exclusion=job.exclusion_radius is not None,
                ),
            )
        profiles = {}
        for window in job.windows:
            profiles[window] = _profile_for_length(
                values,
                stats,
                window,
                job.exclusion_radius,
                job.block_size,
                job.kernel,
                job.reseed_interval,
            )
            # Keep the shared-stats cache bounded across a length sweep
            # (mirrors the forget-per-length discipline of the serial
            # loops this batch path replaces).
            stats.forget(window)
        if job.window is not None:
            return ("ok", profiles[job.window])
        return ("ok", profiles)
    except Exception as error:  # noqa: BLE001 - the whole point is isolation
        return ("error", error)


def _job_task(job: ProfileJob):
    """Top-level (picklable) adapter for process-pool dispatch.

    A job stamped with an observability context (``job.trace``) adopts it
    and returns a **three**-tuple whose last element is the harvest blob
    (spans + metric delta) for the parent to absorb; unstamped jobs keep
    the plain two-tuple shape.
    """
    if job.trace is None:
        return _run_job(job)
    context, enqueued_at = job.trace
    with obs.remote_task(context, skip_same_process=True) as task:
        queued = max(0.0, time.time() - enqueued_at)
        _JOB_QUEUE_SECONDS.observe(queued)
        obs.record_span("engine.job.queue", enqueued_at, queued)
        with obs.span("engine.job", windows=len(job.windows)):
            _JOBS.inc()
            outcome = _run_job(job)
    return outcome + (task.harvest(),)


def _series_length(series: object) -> int | None:
    """Series length without materialising the data.

    Handles already know their length; attaching them in the parent just
    to size the work would pin mappings the parent never computes on.
    """
    if isinstance(series, BlobHandle):
        return int(series.length)
    if isinstance(series, SharedArraysHandle):
        for key, _offset, count in series.fields:
            if key == "values":
                return int(count)
        return None
    try:
        return int(validate_series(series).size)
    except Exception:  # invalid series fail per-job later, not here
        return None


def _prepare_parallel_tasks(
    job_list: List[ProfileJob],
) -> Tuple[List[ProfileJob], List[SharedSeriesBuffer]]:
    """Rewrite shared plain-array series onto handle transport.

    Jobs whose ``series`` is the *same array object* would each pickle the
    full O(n) array across the pool boundary — for a length sweep over one
    series that is O(n · jobs) of pure serialisation.  Groups of two or
    more such jobs get their series packed once into a
    :class:`~repro.engine.shm.SharedSeriesBuffer` and the jobs rewritten
    to reference its handle; singleton and already-handle-backed jobs pass
    through untouched.  Returns the (possibly rewritten) task list plus
    the buffers the caller must close after the map completes.

    The rewrite only changes the *transport*: outcomes still reference the
    caller's original jobs, and a packing failure (no shared memory)
    simply leaves the remaining jobs on the pickle path.

    Both series slots participate: a blocked AB-join fan-out shares *two*
    arrays across its jobs (``series`` and ``series_b``), and each becomes
    one buffer no matter how many jobs — or which field — reference it.
    """
    groups: Dict[int, List[Tuple[int, str]]] = {}
    for index, job in enumerate(job_list):
        for field in ("series", "series_b"):
            series = getattr(job, field)
            if series is None or isinstance(series, (BlobHandle, SharedArraysHandle)):
                continue
            groups.setdefault(id(series), []).append((index, field))

    tasks = list(job_list)
    buffers: List[SharedSeriesBuffer] = []
    for references in groups.values():
        if len(references) < 2:
            continue
        first_index, first_field = references[0]
        try:
            values = validate_series(getattr(job_list[first_index], first_field))
        except Exception:
            continue  # the job itself will surface the validation error
        buffer = SharedSeriesBuffer.create({"values": values})
        if buffer is None:  # shared memory unavailable: keep pickling
            break
        buffers.append(buffer)
        for index, field in references:
            tasks[index] = replace(tasks[index], **{field: buffer.handle})
    return tasks, buffers


def compute_profiles(
    jobs: Iterable[ProfileJob],
    *,
    executor: "str | Executor | None" = "auto",
    n_jobs: int | None = None,
) -> List[JobOutcome]:
    """Run many profile jobs through one executor, preserving job order.

    Parameters
    ----------
    jobs:
        The :class:`ProfileJob` list.  Jobs over the same series object
        share one :class:`~repro.stats.sliding.SlidingStats` when running
        serially (see the module docstring).
    executor:
        ``"serial"``, ``"parallel"``, ``"auto"`` (default), ``None``, or
        an :class:`~repro.engine.executor.Executor` instance; ``"auto"``
        weighs the summed subsequence counts of all jobs.

    Returns
    -------
    list of JobOutcome
        One outcome per job, in submission order.  Failed jobs carry
        their exception in ``outcome.error``; the batch itself never
        raises for a per-job failure.
    """
    job_list = list(jobs)
    for job in job_list:
        if not isinstance(job, ProfileJob):
            raise InvalidParameterError(
                f"compute_profiles expects ProfileJob instances, got {type(job).__name__}"
            )
    if not job_list:
        return []

    task_units = 0
    for job in job_list:
        size = _series_length(job.series)
        if size is None:  # invalid series fail per-job later, not here
            continue
        if job.query_offset is not None:
            # One MASS call is O(n log n), i.e. ~log2(n) "profile rows".
            task_units += max(1, int(size).bit_length())
        elif job.series_b is not None:
            # Join jobs: one recurrence row per query offset of the block.
            if job.row_range is not None:
                task_units += max(1, job.row_range[1] - job.row_range[0])
            else:
                task_units += max(1, size - (job.window or 1) + 1)
        else:
            task_units += sum(max(1, size - window + 1) for window in job.windows)

    chosen, owned = resolve_executor(executor, task_units=task_units, n_jobs=n_jobs)
    batch_span = obs.span("engine.batch", jobs=len(job_list))
    batch_span.__enter__()
    try:
        if chosen.supports_callbacks:  # serial: share stats across jobs
            stats_cache: Dict[tuple, SlidingStats] = {}
            _JOBS.inc(len(job_list))
            raw = [_run_job(job, stats_cache) for job in job_list]
        else:
            tasks = job_list
            buffers: List[SharedSeriesBuffer] = []
            if chosen.uses_processes:
                # Deduplicate shared plain-array series onto handle
                # transport so the pool pickles bytes, not gigabytes.
                tasks, buffers = _prepare_parallel_tasks(job_list)
            obs_context = obs.current_payload()
            if obs_context is not None:
                stamp = (obs_context, time.time())
                tasks = [replace(task, trace=stamp) for task in tasks]
            try:
                raw = chosen.map(_job_task, tasks)
            finally:
                for buffer in buffers:
                    buffer.close()
                    buffer.unlink()
            harvested = []
            for item in raw:
                if len(item) == 3:
                    obs.absorb(item[2])
                    item = item[:2]
                harvested.append(item)
            raw = harvested
    finally:
        batch_span.__exit__(None, None, None)
        if owned:
            chosen.close()

    outcomes: List[JobOutcome] = []
    for index, (job, (status, payload)) in enumerate(zip(job_list, raw)):
        if status == "ok":
            outcomes.append(JobOutcome(index=index, job=job, result=payload))
        else:
            outcomes.append(JobOutcome(index=index, job=job, error=payload))
    return outcomes
