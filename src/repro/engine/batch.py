"""Batch execution of many matrix-profile jobs through one executor.

The range algorithms (``stomp-range``, SKIMP) and the harness all share
the same shape of work: *many independent profile computations over the
same or different series*.  :func:`compute_profiles` gives that shape a
first-class API:

* a :class:`ProfileJob` names one unit of work — a series plus either a
  single ``window`` (one :class:`~repro.matrix_profile.profile.MatrixProfile`)
  or a list of ``lengths`` (a dict mapping each length to its profile);
* jobs are dispatched through one
  :class:`~repro.engine.executor.Executor` — serially in-process, or one
  job per process-pool task when the executor is parallel;
* results come back as :class:`JobOutcome` objects **in job order**; a
  job that raises records its exception in ``outcome.error`` without
  affecting the other jobs (``outcome.unwrap()`` re-raises it).

``SlidingStats`` reuse: when jobs run serially, a per-batch cache keyed
on series identity shares one :class:`~repro.stats.sliding.SlidingStats`
(one pair of prefix-sum arrays) across every job on the same series —
this is what makes a many-lengths batch over one series cost one ``O(n)``
statistics pass instead of one per length.  Parallel workers live in
separate processes and rebuild the ``O(n)`` statistics per job; that cost
is negligible against the ``O(n²)`` profile computation it fronts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.engine.executor import Executor, resolve_executor
from repro.engine.partition import DEFAULT_RESEED_INTERVAL, partitioned_stomp
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.distance_profile import distance_profile
from repro.matrix_profile.profile import MatrixProfile
from repro.series.dataseries import DataSeries
from repro.series.validation import validate_series
from repro.stats.sliding import SlidingStats

__all__ = ["ProfileJob", "JobOutcome", "compute_profiles"]


@dataclass(frozen=True, eq=False)
class ProfileJob:
    """One unit of batch work: a series plus a window or a length list.

    Exactly one of ``window`` / ``lengths`` must be given.  ``name`` is
    carried through to the outcome for the caller's bookkeeping and
    defaults to the series name when the series is a
    :class:`~repro.series.DataSeries`.

    ``query_offset`` (only with ``window=``) narrows the job from a full
    matrix profile to the *distance profile* of one query offset — a single
    MASS call.  VALMOD's per-length exact recomputations are exactly this
    shape: many independent single-offset profiles at one length, which the
    batch layer can fan out across workers.  The outcome's result is then a
    plain ``numpy`` distance array (exclusion zone applied when
    ``exclusion_radius`` is set) instead of a
    :class:`~repro.matrix_profile.profile.MatrixProfile`.

    ``eq=False``: the generated field-tuple ``__eq__`` would compare the
    series array element-wise (ambiguous truth value) and make jobs
    unhashable; identity semantics are the useful ones for work items.
    """

    series: object
    window: int | None = None
    lengths: Tuple[int, ...] | None = None
    query_offset: int | None = None
    exclusion_radius: int | None = None
    block_size: int | None = None
    kernel: str | None = None
    reseed_interval: int = DEFAULT_RESEED_INTERVAL
    name: str | None = None

    def __post_init__(self) -> None:
        if (self.window is None) == (self.lengths is None):
            raise InvalidParameterError(
                "a ProfileJob needs exactly one of window= or lengths="
            )
        if self.query_offset is not None:
            if self.window is None:
                raise InvalidParameterError(
                    "query_offset= requires a single window= job"
                )
            object.__setattr__(self, "query_offset", int(self.query_offset))
        if self.lengths is not None:
            lengths = tuple(int(length) for length in self.lengths)
            if not lengths:
                raise InvalidParameterError("lengths must not be empty")
            object.__setattr__(self, "lengths", lengths)
        if self.name is None and isinstance(self.series, DataSeries):
            object.__setattr__(self, "name", self.series.name)

    @property
    def windows(self) -> Tuple[int, ...]:
        """The window lengths this job evaluates (singleton for window jobs)."""
        return (self.window,) if self.window is not None else self.lengths


@dataclass(frozen=True)
class JobOutcome:
    """Result slot of one job, in the order the jobs were submitted.

    ``result`` is a :class:`MatrixProfile` for ``window=`` jobs, a dict of
    them for ``lengths=`` jobs, and a plain distance array for
    ``query_offset=`` jobs.
    """

    index: int
    job: ProfileJob
    result: Union[MatrixProfile, Dict[int, MatrixProfile], np.ndarray, None] = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        """True when the job completed without raising."""
        return self.error is None

    def unwrap(self) -> Union[MatrixProfile, Dict[int, MatrixProfile], np.ndarray]:
        """The job's result, re-raising the job's exception if it failed."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


def _profile_for_length(
    values: np.ndarray,
    stats: SlidingStats,
    window: int,
    exclusion_radius: int | None,
    block_size: int | None,
    kernel: str | None,
    reseed_interval: int,
) -> MatrixProfile:
    """One serial blocked profile computation (runs inside a worker).

    Delegates to :func:`~repro.engine.partition.partitioned_stomp` with a
    serial executor — job-level parallelism (one process per job) is the
    batch layer's concern, so the per-job computation must not spawn
    nested pools.
    """
    return partitioned_stomp(
        values,
        window,
        executor="serial",
        block_size=block_size,
        kernel=kernel,
        reseed_interval=reseed_interval,
        exclusion_radius=exclusion_radius,
        stats=stats,
    )


def _run_job(
    job: ProfileJob,
    stats_cache: Dict[int, SlidingStats] | None = None,
) -> Tuple[str, object]:
    """Run one job to a ``("ok", result)`` / ``("error", exc)`` pair.

    Errors are captured *inside* the worker so one failing job cannot
    poison a process-pool map; the pair representation (rather than the
    exception itself) keeps the transport picklable either way.
    """
    try:
        values = validate_series(job.series)
        stats = None
        if stats_cache is not None:
            stats = stats_cache.get(id(job.series))
        if stats is None:
            stats = SlidingStats(values)
            if stats_cache is not None:
                stats_cache[id(job.series)] = stats
        if job.query_offset is not None:
            # Single-offset job: one distance profile (a MASS call), not a
            # full matrix profile.  No stats.forget(): many such jobs share
            # one window, so the cached per-window statistics are the point.
            return (
                "ok",
                distance_profile(
                    values,
                    job.query_offset,
                    job.window,
                    stats=stats,
                    exclusion_radius=job.exclusion_radius,
                    apply_exclusion=job.exclusion_radius is not None,
                ),
            )
        profiles = {}
        for window in job.windows:
            profiles[window] = _profile_for_length(
                values,
                stats,
                window,
                job.exclusion_radius,
                job.block_size,
                job.kernel,
                job.reseed_interval,
            )
            # Keep the shared-stats cache bounded across a length sweep
            # (mirrors the forget-per-length discipline of the serial
            # loops this batch path replaces).
            stats.forget(window)
        if job.window is not None:
            return ("ok", profiles[job.window])
        return ("ok", profiles)
    except Exception as error:  # noqa: BLE001 - the whole point is isolation
        return ("error", error)


def _job_task(job: ProfileJob) -> Tuple[str, object]:
    """Top-level (picklable) adapter for process-pool dispatch."""
    return _run_job(job)


def compute_profiles(
    jobs: Iterable[ProfileJob],
    *,
    executor: "str | Executor | None" = "auto",
    n_jobs: int | None = None,
) -> List[JobOutcome]:
    """Run many profile jobs through one executor, preserving job order.

    Parameters
    ----------
    jobs:
        The :class:`ProfileJob` list.  Jobs over the same series object
        share one :class:`~repro.stats.sliding.SlidingStats` when running
        serially (see the module docstring).
    executor:
        ``"serial"``, ``"parallel"``, ``"auto"`` (default), ``None``, or
        an :class:`~repro.engine.executor.Executor` instance; ``"auto"``
        weighs the summed subsequence counts of all jobs.

    Returns
    -------
    list of JobOutcome
        One outcome per job, in submission order.  Failed jobs carry
        their exception in ``outcome.error``; the batch itself never
        raises for a per-job failure.
    """
    job_list = list(jobs)
    for job in job_list:
        if not isinstance(job, ProfileJob):
            raise InvalidParameterError(
                f"compute_profiles expects ProfileJob instances, got {type(job).__name__}"
            )
    if not job_list:
        return []

    task_units = 0
    for job in job_list:
        try:
            size = validate_series(job.series).size
        except Exception:  # invalid series fail per-job later, not here
            continue
        if job.query_offset is not None:
            # One MASS call is O(n log n), i.e. ~log2(n) "profile rows".
            task_units += max(1, int(size).bit_length())
        else:
            task_units += sum(max(1, size - window + 1) for window in job.windows)

    chosen, owned = resolve_executor(executor, task_units=task_units, n_jobs=n_jobs)
    try:
        if chosen.supports_callbacks:  # serial: share stats across jobs
            stats_cache: Dict[int, SlidingStats] = {}
            raw = [_run_job(job, stats_cache) for job in job_list]
        else:
            raw = chosen.map(_job_task, job_list)
    finally:
        if owned:
            chosen.close()

    outcomes: List[JobOutcome] = []
    for index, (job, (status, payload)) in enumerate(zip(job_list, raw)):
        if status == "ok":
            outcomes.append(JobOutcome(index=index, job=job, result=payload))
        else:
            outcomes.append(JobOutcome(index=index, job=job, error=payload))
    return outcomes
