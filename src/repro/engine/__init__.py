"""Block-partitioned parallel execution engine.

This package decouples the matrix-profile algorithms from the way their
work is scheduled:

* :mod:`repro.engine.partition` — the block decomposition of STOMP: the
  query range is split into contiguous row blocks, each seeded by one
  FFT-based MASS call and advanced with the dot-product recurrence, so
  blocks are independent and their results concatenate into the exact
  profile (see that module's docstring for the exactness argument).
* :mod:`repro.engine.executor` — pluggable executors
  (:class:`SerialExecutor`, process-pool backed :class:`ParallelExecutor`,
  :func:`auto_executor` selection by problem size) that map picklable
  tasks and preserve task order.
* :mod:`repro.engine.batch` — :func:`compute_profiles`: many
  (series, window / length-range) jobs through one executor, with shared
  sliding-statistics reuse and per-job error isolation.
* :mod:`repro.engine.shm` — :class:`SharedSeriesBuffer`: the block
  arrays packed once into a ``multiprocessing.shared_memory`` segment so
  process-pool payloads carry a name instead of pickled O(n) arrays,
  with automatic fallback to pickling when shared memory is unavailable.

The serial single-sweep implementations remain the defaults and the
correctness oracles everywhere; the engine is opted into with the
``engine=`` / ``n_jobs=`` knobs on :func:`repro.stomp`,
:func:`repro.valmod`, :func:`repro.skimp`, :func:`repro.stomp_range`
and the ``--engine`` / ``--jobs`` CLI flags.
"""

from repro.engine.batch import JobOutcome, ProfileJob, compute_profiles
from repro.engine.executor import (
    AUTO_PARALLEL_MIN_TASK_UNITS,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    auto_executor,
    resolve_executor,
)
from repro.engine.partition import (
    DEFAULT_RESEED_INTERVAL,
    default_block_size,
    partitioned_stomp,
    plan_blocks,
)
from repro.engine.shm import (
    BlobHandle,
    SharedArraysHandle,
    SharedSeriesBuffer,
    attach_arrays,
    attach_blob,
    shared_memory_available,
)

__all__ = [
    "AUTO_PARALLEL_MIN_TASK_UNITS",
    "BlobHandle",
    "DEFAULT_RESEED_INTERVAL",
    "Executor",
    "JobOutcome",
    "ParallelExecutor",
    "ProfileJob",
    "SerialExecutor",
    "SharedArraysHandle",
    "SharedSeriesBuffer",
    "attach_arrays",
    "attach_blob",
    "auto_executor",
    "compute_profiles",
    "default_block_size",
    "partitioned_stomp",
    "plan_blocks",
    "resolve_executor",
    "shared_memory_available",
]
