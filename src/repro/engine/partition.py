"""Block-partitioned STOMP.

The STOMP recurrence computes row ``i`` of the (implicit) distance matrix
from row ``i-1``::

    QT[i, j] = QT[i-1, j-1] - T[i-1]·T[j-1] + T[i+m-1]·T[j+m-1]

which looks inherently sequential — but only *within* a chain of rows.
Any row can start a fresh chain by computing its sliding dot products
directly with one FFT-based MASS call.  Splitting the query range
``[0, n-m]`` into contiguous **row blocks**, each seeded by one MASS call
and advanced with the recurrence, therefore yields units of work that are
embarrassingly parallel *and* individually cheaper in accumulated
floating-point error than one monolithic sweep.

Exactness of the merge
----------------------
The matrix profile entry of offset ``i`` is a function of row ``i`` alone
(the minimum of its masked distance profile).  Because the blocks
partition the rows — every row belongs to exactly one block and is
computed completely inside it — the per-block profiles and index arrays
can simply be **concatenated** in block order.  No min-merge, tie-break
or overlap handling is needed; the merge introduces no error of its own.
The only deviation from the serial sweep is floating-point: a block's
first row comes from a fresh FFT instead of ``block_size`` recurrence
steps, which makes the blocked result slightly *more* accurate, not
less (see the re-seeding note below).

The same argument covers VALMOD's base-pass ingest: the entries a
:class:`~repro.core.partial_profile.PartialProfileStore` retains for row
``i`` are a function of row ``i``'s distance profile alone, so each block
ingests its rows into a store *fragment* and the fragments merge
positionally — bit for bit the store a serial ingest would have built
from the same block plan.  This replaced the old ``profile_callback``
special case that forced the whole sweep serial whenever VALMOD ran.

Series transport
----------------
Process-pool payloads do not pickle the O(n) arrays (series, means, stds,
first-row products) into every task: when the platform provides
``multiprocessing.shared_memory`` the arrays are packed once into a
:class:`~repro.engine.shm.SharedSeriesBuffer` and each payload carries
only the segment handle; workers attach by name and cache the mapping per
process.  When shared memory is unavailable the payloads fall back to
carrying the arrays (slower, never wrong).

Re-seeding and numerical drift
------------------------------
Each recurrence step adds two rounding errors of magnitude
``~eps·|T|²_max`` to every retained dot product, so the drift of a chain
grows linearly with its length.  For well-scaled series this stays
far below any meaningful tolerance, but high-variance series (large
offsets, heavy-tailed spikes) can push a multi-thousand-row chain past
``1e-8`` absolute.  Two mechanisms bound the drift:

* every block starts from a fresh MASS seed, so a chain is never longer
  than the block size;
* within a block, the chain is re-seeded with a fresh MASS call every
  ``reseed_interval`` rows (default :data:`DEFAULT_RESEED_INTERVAL`).
  The reseed costs one ``O(n log n)`` FFT per interval — amortised over
  ``reseed_interval`` rows of ``O(n)`` work each, an overhead of roughly
  ``log(n) / reseed_interval``, i.e. well under 5% at the default.

The correlation clamp in
:func:`~repro.matrix_profile.distance_profile.distances_from_dot_products`
(``clip(correlation, -1, 1)``) remains the last line of defence against
drift producing out-of-range correlations.
"""

from __future__ import annotations

import math
import time
from typing import Callable, List, Tuple

import numpy as np

from repro import obs
from repro.engine.executor import Executor, resolve_executor
from repro.engine.shm import (
    SharedArraysHandle,
    SharedSegmentPool,
    SharedSeriesBuffer,
    attach_arrays,
)
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.kernels import run_sweep
from repro.matrix_profile.profile import MatrixProfile
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.distance import compensation_needed
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats

__all__ = [
    "plan_blocks",
    "default_block_size",
    "partitioned_stomp",
    "DEFAULT_RESEED_INTERVAL",
]

#: Rows advanced by the dot-product recurrence before the chain is re-seeded
#: with a fresh MASS call.  512 keeps worst-case accumulated drift orders of
#: magnitude below the library's 1e-8 comparison tolerance even for
#: high-variance series, at <5% extra FFT work (see the module docstring).
DEFAULT_RESEED_INTERVAL = 512

#: Minimum block size the planner will produce: below ~64 rows the per-block
#: MASS seed dominates the recurrence work the block saves.
_MIN_AUTO_BLOCK = 64

# Engine telemetry: one recording per block / per sweep call, never per row.
_ENGINE_METRICS = obs.scope("engine")
_BLOCKS = _ENGINE_METRICS.counter("blocks")
_BLOCK_SECONDS = _ENGINE_METRICS.histogram("block_seconds")
_BLOCK_QUEUE_SECONDS = _ENGINE_METRICS.histogram("block_queue_seconds")
_STOMP_CALLS = _ENGINE_METRICS.counter("stomp_calls")


def default_block_size(count: int, n_jobs: int) -> int:
    """Rows per block for ``count`` query rows on ``n_jobs`` workers.

    Aims at four blocks per worker — enough slack for the pool to balance
    uneven progress without shrinking blocks into seed-dominated slivers.
    Blocks are not capped at the re-seed interval: chains re-seed *inside*
    a block every :data:`DEFAULT_RESEED_INTERVAL` rows, so a large block
    is numerically equivalent to many small ones while paying the
    per-task transfer cost only once.
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    if n_jobs < 1:
        raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
    per_worker = int(math.ceil(count / (4 * n_jobs)))
    return max(1, min(count, max(_MIN_AUTO_BLOCK, per_worker)))


def plan_blocks(count: int, block_size: int) -> List[Tuple[int, int]]:
    """Partition ``range(count)`` into ``[start, stop)`` row blocks."""
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    if block_size < 1:
        raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
    return [
        (start, min(start + block_size, count)) for start in range(0, count, block_size)
    ]


def _compute_block(
    values: np.ndarray,
    window: int,
    radius: int,
    means: np.ndarray,
    stds: np.ndarray,
    first_row_dots: np.ndarray,
    start: int,
    stop: int,
    reseed_interval: int,
    profile_callback: Callable[[int, np.ndarray, np.ndarray], None] | None = None,
    ingest: Tuple[int, int, str] | None = None,
    kernel: str | None = None,
) -> Tuple[np.ndarray, np.ndarray, dict | None]:
    """Profile/index arrays (and optional store fragment) for rows ``[start, stop)``.

    The first row is seeded with one MASS call; subsequent rows advance
    the STOMP recurrence, re-seeding every ``reseed_interval`` rows.
    ``first_row_dots`` holds ``QT[0, j]`` for every ``j``; by symmetry of
    the self-join, ``QT[i, 0] = first_row_dots[i]`` refreshes the column
    the recurrence cannot reach.  All arrays live in mean-centered space.
    The sweep itself — recurrence, reseeding, reductions, hook dispatch —
    is :func:`repro.matrix_profile.kernels.run_sweep` with the requested
    kernel; segment boundaries are shared by all kernels, so the block
    result does not depend on which one ran.

    ``ingest`` — ``(capacity, exclusion_factor, lower_bound_kind)`` — makes
    the block build a :class:`~repro.core.partial_profile.PartialProfileStore`
    fragment covering its rows and return the fragment's exported state as
    the third element (``None`` otherwise).
    """
    started_at = time.perf_counter()
    with obs.span("engine.block", start=int(start), stop=int(stop)):
        fragment = None
        if ingest is not None:
            from repro.core.partial_profile import PartialProfileStore

            capacity, exclusion_factor, lower_bound_kind = ingest
            fragment = PartialProfileStore.fragment(
                values,
                means,
                stds,
                window,
                capacity,
                exclusion_factor=exclusion_factor,
                lower_bound_kind=lower_bound_kind,
                row_range=(start, stop),
            )

        profile, indices = run_sweep(
            values,
            window,
            radius,
            means,
            stds,
            first_row_dots,
            start,
            stop,
            kernel=kernel,
            reseed_interval=reseed_interval,
            profile_callback=profile_callback,
            ingest=fragment,
        )
    _BLOCKS.inc()
    _BLOCK_SECONDS.observe(time.perf_counter() - started_at)
    return profile, indices, None if fragment is None else fragment.export_state()


def _block_task(payload):
    """Top-level (hence picklable) adapter around :func:`_compute_block`.

    ``payload[0]`` carries the four O(n) block arrays — either directly as
    a tuple or as a :class:`~repro.engine.shm.SharedArraysHandle` naming
    the shared-memory segment they were packed into.  A ninth element, when
    present, is the observability stamp ``(obs_payload, enqueued_at)``: the
    task then adopts the dispatcher's trace/metrics context and returns a
    **four**-tuple whose last element is the harvest blob for the parent to
    :func:`repro.obs.absorb` (``None`` harvest when nothing was recorded).
    """
    obs_stamp = None
    if len(payload) == 9:
        obs_stamp, payload = payload[8], payload[:8]
    arrays_ref, window, radius, start, stop, reseed_interval, ingest, kernel = payload
    if isinstance(arrays_ref, SharedArraysHandle):
        arrays = attach_arrays(arrays_ref)
        values = arrays["values"]
        means = arrays["means"]
        stds = arrays["stds"]
        first_row_dots = arrays["first_row_dots"]
    else:
        values, means, stds, first_row_dots = arrays_ref
    if obs_stamp is None:
        return _compute_block(
            values,
            window,
            radius,
            means,
            stds,
            first_row_dots,
            start,
            stop,
            reseed_interval,
            None,
            ingest,
            kernel,
        )
    context, enqueued_at = obs_stamp
    with obs.remote_task(context, skip_same_process=True) as task:
        queued = max(0.0, time.time() - enqueued_at)
        _BLOCK_QUEUE_SECONDS.observe(queued)
        obs.record_span(
            "engine.block.queue", enqueued_at, queued, start=int(start), stop=int(stop)
        )
        result = _compute_block(
            values,
            window,
            radius,
            means,
            stds,
            first_row_dots,
            start,
            stop,
            reseed_interval,
            None,
            ingest,
            kernel,
        )
    return result + (task.harvest(),)


def partitioned_stomp(
    series,
    window: int,
    *,
    executor: "str | Executor | None" = "auto",
    n_jobs: int | None = None,
    block_size: int | None = None,
    kernel: str | None = None,
    reseed_interval: int = DEFAULT_RESEED_INTERVAL,
    exclusion_radius: int | None = None,
    stats: SlidingStats | None = None,
    profile_callback: Callable[[int, np.ndarray, np.ndarray], None] | None = None,
    ingest_store=None,
    segment_pool: SharedSegmentPool | None = None,
    segment_key: str | None = None,
) -> MatrixProfile:
    """Exact matrix profile via block-partitioned STOMP.

    Produces the same profile as :func:`repro.matrix_profile.stomp.stomp`
    (indices identical, distances within floating-point noise — the test
    suite holds both to ``1e-8``) but computes it in independent row
    blocks that an :class:`~repro.engine.executor.Executor` may run in
    parallel.

    Parameters
    ----------
    executor:
        ``"serial"``, ``"parallel"``, ``"auto"`` (default; picks parallel
        only for large inputs on multi-core machines), ``None`` (serial)
        or an :class:`~repro.engine.executor.Executor` instance, which
        the caller remains responsible for closing.
    n_jobs:
        Worker count for ``"parallel"`` / ``"auto"``; defaults to the
        machine's core count.
    block_size:
        Rows per block; defaults to :func:`default_block_size`.
    kernel:
        Sweep kernel each block runs
        (:mod:`repro.matrix_profile.kernels`); all kernels produce
        identical block results, so mixed-kernel workers would even be
        legal.  ``None`` resolves per process (``REPRO_KERNEL`` or auto).
    reseed_interval:
        Rows advanced by the recurrence before a fresh MASS seed (see the
        module docstring); ``DEFAULT_RESEED_INTERVAL`` by default.
    profile_callback:
        Per-row hook ``callback(offset, dot_products, distances)`` with
        **mean-centered** dot products — an inherently order-dependent
        contract, so when given, blocks run serially in row order
        regardless of the executor; block seeding and re-seeding still
        apply.  VALMOD no longer needs this: its ingest goes through
        ``ingest_store``, which parallelises.
    ingest_store:
        An empty :class:`~repro.core.partial_profile.PartialProfileStore`
        whose ``base_length`` equals ``window``.  Each block ingests its
        rows into a store fragment (inside the worker, when parallel) and
        the fragments are merged back here in block order — the
        block-parallel replacement for VALMOD's old per-row callback.
    segment_pool, segment_key:
        Opt-in segment reuse across calls: with both given (and a process
        executor), the packed series segment is acquired from the
        :class:`~repro.engine.shm.SharedSegmentPool` under ``segment_key``
        instead of created fresh — a repeat call with the same key skips
        the pack *and* the seeding FFT, and each worker's attach-cache hit
        skips the copy.  The pool's owner (the
        :class:`~repro.api.Analysis` session keys it by series digest plus
        window) is responsible for unlinking; this function never unlinks
        a pooled segment.  The caller must guarantee the key uniquely
        names the packed content — series values, ``window`` and the
        statistics they derive.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    radius = (
        default_exclusion_radius(window) if exclusion_radius is None else int(exclusion_radius)
    )
    if reseed_interval < 1:
        raise InvalidParameterError(
            f"reseed_interval must be >= 1, got {reseed_interval}"
        )
    if stats is None:
        stats = SlidingStats(values)
    count = values.size - window + 1

    # Same contract as the serial sweep in repro.matrix_profile.stomp: the
    # recurrence runs on the mean-centered series (z-normalised distances
    # are shift-invariant; the centered products no longer carry rounding
    # error at the raw magnitude).  The partial-profile store is centered
    # too, so there is no raw-value special case left.
    sweep_values = stats.centered_values
    means, stds = stats.centered_mean_std(window)

    ingest = None
    if ingest_store is not None:
        if profile_callback is not None:
            raise InvalidParameterError(
                "pass either profile_callback or ingest_store, not both"
            )
        ingest_store.require_ready_for_ingest(window)
        ingest = (
            ingest_store.capacity,
            ingest_store.exclusion_factor,
            ingest_store.lower_bound_kind,
        )

    # The seeding FFT is deferred: on a segment-pool hit the packed
    # first-row products already live in the segment, so a repeat call
    # skips this O(n log n) pass along with the pack itself.
    first_row_dots: np.ndarray | None = None

    def seed_dots() -> np.ndarray:
        nonlocal first_row_dots
        if first_row_dots is None:
            first_row_dots = sliding_dot_product(sweep_values[:window], sweep_values)
        return first_row_dots

    def packed_arrays() -> dict:
        return {
            "values": sweep_values,
            "means": means,
            "stds": stds,
            "first_row_dots": seed_dots(),
        }

    _STOMP_CALLS.inc()
    stomp_span = obs.span("engine.stomp", window=int(window), rows=int(count))
    stomp_span.__enter__()
    try:
        chosen_executor, owned = resolve_executor(
            executor, task_units=count, n_jobs=n_jobs
        )
        try:
            if block_size is None:
                block_size = default_block_size(count, chosen_executor.effective_jobs)
            blocks = plan_blocks(count, block_size)

            if profile_callback is not None or chosen_executor.supports_callbacks:
                results = [
                    _compute_block(
                        sweep_values,
                        window,
                        radius,
                        means,
                        stds,
                        seed_dots(),
                        start,
                        stop,
                        reseed_interval,
                        profile_callback,
                        ingest,
                        kernel,
                    )
                    for start, stop in blocks
                ]
            else:
                # Shared memory only pays off across a process boundary; a
                # degraded pool runs in-process, where the parent would attach
                # to its own segment and pin the mapping for nothing.
                buffer = None
                pooled = False
                if chosen_executor.uses_processes:
                    if segment_pool is not None and segment_key is not None:
                        buffer = segment_pool.acquire(segment_key, packed_arrays)
                        pooled = buffer is not None
                    if buffer is None:
                        buffer = SharedSeriesBuffer.create(packed_arrays())
                arrays_ref = (
                    buffer.handle
                    if buffer is not None
                    else (sweep_values, means, stds, seed_dots())
                )
                try:
                    # Tasks crossing a process boundary carry the trace and
                    # metrics context; their harvest comes back as a fourth
                    # result element the parent absorbs below.
                    obs_context = obs.current_payload()
                    obs_stamp = (
                        None if obs_context is None else (obs_context, time.time())
                    )
                    payloads = [
                        (
                            arrays_ref,
                            window,
                            radius,
                            start,
                            stop,
                            reseed_interval,
                            ingest,
                            kernel,
                        )
                        + (() if obs_stamp is None else (obs_stamp,))
                        for start, stop in blocks
                    ]
                    results = chosen_executor.map(_block_task, payloads)
                    harvested = []
                    for item in results:
                        if len(item) == 4:
                            obs.absorb(item[3])
                            item = item[:3]
                        harvested.append(item)
                    results = harvested
                finally:
                    # A pooled segment belongs to its pool's owner (the
                    # session) and stays mapped for the next call on the
                    # same key.
                    if buffer is not None and not pooled:
                        buffer.close()
                        buffer.unlink()
        finally:
            if owned:
                chosen_executor.close()

        if ingest_store is not None:
            # Fragment rows partition the query range, so positional merges
            # in block order rebuild the exact serially-ingested store.
            for _, _, state in results:
                ingest_store.merge(state)

        # Row blocks partition the query range, so block order == row order
        # and concatenation *is* the exact merge (see the module docstring).
        profile = np.concatenate([block_profile for block_profile, _, _ in results])
        indices = np.concatenate([block_indices for _, block_indices, _ in results])
        return MatrixProfile(
            distances=profile, indices=indices, window=window, exclusion_radius=radius
        )
    finally:
        stomp_span.__exit__(None, None, None)
