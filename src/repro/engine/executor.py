"""Pluggable executors for block- and job-level parallelism.

The engine separates *what* is computed (the block plan built by
:mod:`repro.engine.partition`, the job list handled by
:mod:`repro.engine.batch`) from *how* the pieces run.  An
:class:`Executor` maps a picklable function over a list of picklable
tasks and returns the results **in task order** — that ordering guarantee
is what makes the engine's merges exact: the caller can concatenate or
zip the results positionally without any reordering bookkeeping.

Two concrete executors are provided:

* :class:`SerialExecutor` — a plain in-process loop.  It is the default,
  the correctness oracle, and the only executor that can service
  per-row callbacks (VALMOD's base-profile ingest is order-dependent).
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  wrapper.  The pool is created lazily on first use and *reused* across
  calls, so a test suite (or a batch of jobs) pays the worker start-up
  cost once.  If the platform refuses to create a process pool (some
  sandboxes block the required semaphores), it degrades to serial
  execution rather than failing.

:func:`auto_executor` picks between the two from the problem size: below
``AUTO_PARALLEL_MIN_TASK_UNITS`` units of work the per-task pickling and
scheduling overhead of a process pool outweighs any speedup, so the
serial executor is chosen; likewise when the machine has a single core.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence

from repro import obs
from repro.exceptions import InvalidParameterError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "auto_executor",
    "resolve_executor",
    "AUTO_PARALLEL_MIN_TASK_UNITS",
]

#: Below this many "work units" (subsequences for a profile computation,
#: summed subsequence counts for a batch) the auto-selector stays serial:
#: measured on commodity hardware, a process pool only amortises its fork
#: + pickle overhead once a profile has several thousand rows.
AUTO_PARALLEL_MIN_TASK_UNITS = 8192

_EXECUTOR_METRICS = obs.scope("engine.executor")
_POOL_SPAWNS = _EXECUTOR_METRICS.counter("pool_spawns")
_POOL_DEGRADES = _EXECUTOR_METRICS.counter("pool_degrades")
_PREWARM_SECONDS = _EXECUTOR_METRICS.gauge("prewarm_seconds")


def _cpu_count() -> int:
    return os.cpu_count() or 1


def _worker_ping(_index: int = 0) -> int:
    """Trivial pool task used by :meth:`ParallelExecutor.prewarm`."""
    return os.getpid()


class Executor:
    """Interface: map a function over tasks, preserving task order."""

    #: Human-readable name, recorded in benchmark artefacts.
    name: str = "abstract"
    #: Whether callers may rely on tasks running sequentially in submission
    #: order inside the calling process (required for per-row callbacks).
    supports_callbacks: bool = False

    @property
    def effective_jobs(self) -> int:
        """Worker count the block planner should size blocks for."""
        return 1

    @property
    def uses_processes(self) -> bool:
        """Whether :meth:`map` will cross a process boundary.

        Callers use this to decide whether cross-process transports
        (shared-memory payloads) are worth setting up.  Defaults to the
        complement of :attr:`supports_callbacks`; executors that can
        degrade to in-process execution should override it with the truth.
        """
        return not self.supports_callbacks

    def map(self, fn: Callable, tasks: Sequence) -> List:
        """Apply ``fn`` to every task and return results in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process, in-order execution — the default and the oracle."""

    name = "serial"
    supports_callbacks = True

    def map(self, fn: Callable, tasks: Sequence) -> List:
        return [fn(task) for task in tasks]


class ParallelExecutor(Executor):
    """Process-pool execution with a lazily created, reusable pool.

    Parameters
    ----------
    n_jobs:
        Number of worker processes; defaults to ``os.cpu_count()``.

    Notes
    -----
    Tasks and results cross process boundaries by pickling, so both must
    be picklable and the mapped function must be importable at module
    top level.  Results are returned in task order (``pool.map``
    semantics), which the engine's exact merges rely on.
    """

    name = "parallel"
    supports_callbacks = False

    def __init__(self, n_jobs: int | None = None) -> None:
        if n_jobs is not None and n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs) if n_jobs is not None else _cpu_count()
        self._pool: ProcessPoolExecutor | None = None
        self._degraded = False

    @property
    def effective_jobs(self) -> int:
        return max(1, self.n_jobs)

    @property
    def uses_processes(self) -> bool:
        """True only when a pool actually exists (forces lazy creation).

        A degraded executor runs tasks in-process, where shared-memory
        transport would be pure overhead — worse, the parent would attach
        to its own segments and pin their mappings for the process
        lifetime (see :func:`repro.engine.shm.attach_arrays`).
        """
        return self._ensure_pool() is not None

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._degraded:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.n_jobs)
                _POOL_SPAWNS.inc()
            except (OSError, PermissionError, ValueError) as error:
                # Restricted environments (no /dev/shm, seccomp sandboxes)
                # cannot host a pool; computing serially is always correct.
                warnings.warn(
                    f"ParallelExecutor could not start a process pool ({error}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._degraded = True
                _POOL_DEGRADES.inc()
        return self._pool

    def prewarm(self) -> float:
        """Spawn the pool and ping every worker once, eagerly.

        Interpreter start-up in the workers normally lands on the first
        real ``map`` call; a service that wants predictable first-request
        latency calls this at boot instead (``repro serve --prewarm``).
        Returns the wall-clock seconds spent (also published as the
        ``engine.executor.prewarm_seconds`` gauge).  A degraded executor
        returns ``0.0`` — there is nothing to warm.
        """
        started = time.perf_counter()
        pool = self._ensure_pool()
        if pool is None:
            return 0.0
        with obs.span("engine.executor.prewarm", workers=self.n_jobs):
            # One trivial task per worker forces every process to finish
            # bootstrapping; chunksize=1 stops a single worker draining
            # the whole batch before its siblings have even started.
            list(pool.map(_worker_ping, range(self.n_jobs), chunksize=1))
        elapsed = time.perf_counter() - started
        _PREWARM_SECONDS.set(elapsed)
        return elapsed

    def map(self, fn: Callable, tasks: Sequence) -> List:
        pool = self._ensure_pool()
        if pool is None:
            return [fn(task) for task in tasks]
        return list(pool.map(fn, tasks))

    def submit(self, fn: Callable, /, *args):
        """Schedule one call on the pool; returns its ``concurrent.futures``
        future.

        The submission half of the :class:`concurrent.futures.Executor`
        interface, which is what lets ``loop.run_in_executor`` drive this
        pool directly (the analysis service's process data plane).  A
        degraded executor raises instead of silently running ``fn`` inline —
        inline execution during ``submit`` would block the caller's event
        loop, the exact failure mode the pool exists to prevent; callers
        check :attr:`uses_processes` first and fall back themselves.
        """
        pool = self._ensure_pool()
        if pool is None:
            raise InvalidParameterError(
                "this ParallelExecutor degraded to in-process execution; "
                "submit() needs a live process pool (check uses_processes)"
            )
        return pool.submit(fn, *args)

    def close(self, *, wait: bool = True, cancel_futures: bool = False) -> None:
        """Shut the pool down.  ``wait=False`` + ``cancel_futures=True`` is
        the service-shutdown flavour: pending tasks are dropped and the
        call returns without blocking on in-flight computations."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)
            self._pool = None


def auto_executor(
    task_units: int,
    n_jobs: int | None = None,
    *,
    threshold: int = AUTO_PARALLEL_MIN_TASK_UNITS,
) -> Executor:
    """Pick serial vs parallel execution from the problem size.

    ``task_units`` should approximate the total number of output rows the
    computation produces (subsequence count for one profile, summed counts
    for a batch).  Parallel execution is selected only when the machine
    has more than one core, more than one job was requested (or left to
    default), and the work is large enough to amortise the pool overhead.
    """
    jobs = int(n_jobs) if n_jobs is not None else _cpu_count()
    if jobs <= 1 or task_units < threshold:
        return SerialExecutor()
    return ParallelExecutor(jobs)


def resolve_executor(
    engine: "str | Executor | None",
    *,
    task_units: int,
    n_jobs: int | None = None,
) -> tuple[Executor, bool]:
    """Resolve an ``engine=`` knob value into an executor.

    Accepts ``"serial"``, ``"parallel"``, ``"auto"``, ``None`` (same as
    ``"serial"``) or an :class:`Executor` instance.  Returns
    ``(executor, owned)`` where ``owned`` tells the caller whether it is
    responsible for closing the executor (instances passed in by the user
    are never closed by the engine).
    """
    if isinstance(engine, Executor):
        return engine, False
    if engine is None or engine == "serial":
        return SerialExecutor(), True
    if engine == "parallel":
        return ParallelExecutor(n_jobs), True
    if engine == "auto":
        return auto_executor(task_units, n_jobs), True
    raise InvalidParameterError(
        f"unknown engine {engine!r}; expected 'serial', 'parallel', 'auto' "
        "or an Executor instance"
    )
