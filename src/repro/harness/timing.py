"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple

__all__ = ["Timer", "timed_call"]


@dataclass
class Timer:
    """Context manager measuring wall-clock time.

    Example
    -------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._started


def timed_call(function: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started
