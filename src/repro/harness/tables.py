"""Rendering of experiment rows as text / markdown tables and CSV files.

The figure and extension functions all return lists of dictionaries; this
module turns those rows into the artefacts a user actually reads — an aligned
text table for the terminal, a markdown table for EXPERIMENTS.md-style
reports, or a CSV file for external plotting — without pulling in any
plotting dependency.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence

from repro.exceptions import InvalidParameterError

__all__ = [
    "format_table",
    "format_markdown_table",
    "metrics_rows",
    "save_rows_csv",
    "select_columns",
]


def _stringify(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    if isinstance(value, (list, tuple)):
        return ", ".join(_stringify(item, float_format) for item in value)
    return str(value)


def _normalise_rows(
    rows: Iterable[Mapping[str, object]],
    columns: Sequence[str] | None,
) -> tuple[List[str], List[dict]]:
    materialised = [dict(row) for row in rows]
    if not materialised:
        raise InvalidParameterError("cannot format an empty list of rows")
    if columns is None:
        # Preserve the key order of the first row, appending keys that only
        # appear in later rows.
        columns = list(materialised[0].keys())
        for row in materialised[1:]:
            for key in row:
                if key not in columns:
                    columns.append(key)
    else:
        columns = list(columns)
        if not columns:
            raise InvalidParameterError("the column selection must not be empty")
    return columns, materialised


def select_columns(
    rows: Iterable[Mapping[str, object]], columns: Sequence[str]
) -> List[dict]:
    """Project every row onto ``columns`` (missing keys become empty strings)."""
    projected = []
    for row in rows:
        projected.append({column: row.get(column, "") for column in columns})
    if not projected:
        raise InvalidParameterError("cannot project an empty list of rows")
    return projected


def format_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    float_format: str = ".4g",
) -> str:
    """Aligned plain-text table (what the CLI prints)."""
    columns, materialised = _normalise_rows(rows, columns)
    cells = [
        [_stringify(row.get(column, ""), float_format) for column in columns]
        for row in materialised
    ]
    widths = [
        max(len(str(column)), max((len(row[index]) for row in cells), default=0))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in cells
    ]
    return "\n".join([header, separator, *body])


def format_markdown_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    float_format: str = ".4g",
) -> str:
    """GitHub-flavoured markdown table (what EXPERIMENTS.md embeds)."""
    columns, materialised = _normalise_rows(rows, columns)
    header = "| " + " | ".join(str(column) for column in columns) + " |"
    separator = "|" + "|".join(["---"] * len(columns)) + "|"
    body = [
        "| "
        + " | ".join(_stringify(row.get(column, ""), float_format) for column in columns)
        + " |"
        for row in materialised
    ]
    return "\n".join([header, separator, *body])


def save_rows_csv(
    rows: Iterable[Mapping[str, object]],
    path: str | Path,
    *,
    columns: Sequence[str] | None = None,
) -> Path:
    """Write the rows to a CSV file and return its path."""
    columns, materialised = _normalise_rows(rows, columns)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in materialised:
            writer.writerow({column: row.get(column, "") for column in columns})
    return target


def metrics_rows(
    document: Mapping[str, object], *, include_families: bool = False
) -> List[dict]:
    """Flatten a service ``GET /metrics`` document into harness table rows.

    One row per ``(kind, phase)`` histogram with ``count`` / ``mean`` /
    ``p50`` / ``p95`` columns, ready for :func:`format_table` /
    :func:`save_rows_csv` — quantiles are read from the shared log-spaced
    bucket bounds (upper-bound estimates, matching the server's own
    ``/stats`` summaries).

    Understands both document generations: the PR 8 shape (``bounds`` +
    ``kinds``) and the extended registry shape that adds ``families``.
    With ``include_families=True``, registry histograms from other layers
    (``session.compute_seconds``, ``engine.job_queue_seconds``, ...)
    become extra rows whose ``kind`` is the family name — except the
    ``service`` family, which would duplicate the ``kinds`` rows verbatim.
    The default keeps the PR 8 row set exactly, whichever document shape
    arrives.
    """
    import math

    shared_bounds = [float(bound) for bound in document.get("bounds", [])]
    kinds = document.get("kinds", {})
    if not isinstance(kinds, Mapping):
        raise InvalidParameterError("'kinds' must be a mapping of histograms")

    def quantile(
        counts: Sequence[int], total: int, q: float, bounds: Sequence[float]
    ) -> float | None:
        if not total or not bounds:
            return None
        rank = max(1, math.ceil(q * total))
        seen = 0
        for index, bucket in enumerate(counts):
            seen += int(bucket)
            if seen >= rank:
                return bounds[min(index, len(bounds) - 1)]
        return bounds[-1]

    def histogram_row(kind: str, phase: str, histogram: Mapping, bounds) -> dict:
        count = int(histogram.get("count", 0))
        total_seconds = float(histogram.get("sum", 0.0))
        counts = histogram.get("counts", [])
        return {
            "kind": kind,
            "phase": phase,
            "count": count,
            "mean": (total_seconds / count) if count else None,
            "p50": quantile(counts, count, 0.5, bounds),
            "p95": quantile(counts, count, 0.95, bounds),
        }

    rows: List[dict] = []
    for kind in sorted(kinds):
        phases = kinds[kind]
        for phase, histogram in phases.items():
            rows.append(histogram_row(kind, phase, histogram, shared_bounds))
    families = document.get("families") if include_families else None
    if isinstance(families, Mapping):
        for family in sorted(families):
            if family == "service" and kinds:
                continue  # identical histograms already emitted above
            histograms = families[family].get("histograms", {})
            for name in sorted(histograms):
                histogram = histograms[name]
                bounds = [
                    float(bound) for bound in histogram.get("bounds", shared_bounds)
                ]
                rows.append(histogram_row(family, name, histogram, bounds))
    return rows
