"""Regeneration of every figure of the paper (plus reproduction ablations).

Each function returns plain Python data (lists of dictionaries — "rows") so
it can be consumed by the pytest-benchmark modules, printed as a table by the
CLI, or post-processed by a notebook.  The row keys mirror the axes of the
corresponding figure.

Scaled parameters: the paper runs on 0.1M–1M points with ``l_min = 100`` (and
1024 for the range sweep) and range widths up to 600, on a C implementation
with 24-hour timeouts.  The defaults below keep the same *ratios* (range
width vs. base length, series length sweeps in powers of two) at a size a
pure-Python implementation handles in seconds; EXPERIMENTS.md records the
mapping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.analysis.checkpoints import summarize_checkpoints
from repro.baselines.brute_force_range import brute_force_range
from repro.core.valmod import valmod
from repro.harness.runner import run_algorithm
from repro.harness.workloads import build_workload
from repro.matrix_profile.stomp import stomp

__all__ = [
    "figure1_fixed_length",
    "figure1_valmap",
    "figure2_pruning",
    "figure3_length_range",
    "figure3_series_length",
    "ablation_lower_bound",
    "ablation_exactness",
    "ranking_normalization_table",
]

Row = Dict[str, object]


# --------------------------------------------------------------------------- #
# Figure 1 — fixed-length matrix profile vs. VALMAP on ECG
# --------------------------------------------------------------------------- #
def figure1_fixed_length(
    *,
    series_length: int = 5000,
    window: int = 50,
    random_state: int = 0,
) -> Row:
    """Figure 1 (left): ECG snippet, fixed-length matrix profile and index profile.

    Returns the profile arrays plus the motif pair the fixed-length analysis
    finds — which, as in the paper, covers only a fraction of a heartbeat.
    """
    series = build_workload("ecg", series_length, random_state=random_state)
    profile = stomp(series, window)
    best = profile.best()
    beat_period = int(series.metadata["beat_period"])
    return {
        "series_name": series.name,
        "series_length": series_length,
        "window": window,
        "matrix_profile": profile.distances,
        "index_profile": profile.indices,
        "motif": best.as_dict(),
        "beat_period": beat_period,
        "motif_covers_full_beat": window >= beat_period,
    }


def figure1_valmap(
    *,
    series_length: int = 5000,
    min_length: int = 50,
    max_length: int = 250,
    random_state: int = 0,
) -> Row:
    """Figure 1 (right): VALMAP (MPn + length profile) over a length range.

    The key qualitative claim: the variable-length analysis finds motifs at
    (or near) the natural heartbeat length, and the length profile shows
    contiguous regions of updates at longer lengths.
    """
    series = build_workload("ecg", series_length, random_state=random_state)
    result = valmod(series, min_length, max_length, top_k=3)
    summary = summarize_checkpoints(result.valmap)
    best = result.best_motif()
    beat_period = int(series.metadata["beat_period"])
    return {
        "series_name": series.name,
        "series_length": series_length,
        "min_length": min_length,
        "max_length": max_length,
        "normalized_profile": result.valmap.normalized_profile,
        "length_profile": result.valmap.length_profile,
        "index_profile": result.valmap.index_profile,
        "best_motif": best.as_dict(),
        "best_motif_length": best.window,
        "beat_period": beat_period,
        "updated_positions": int(len(result.valmap.updated_positions())),
        "update_regions": summary.update_regions,
        "elapsed_seconds": result.elapsed_seconds,
    }


# --------------------------------------------------------------------------- #
# Figure 2 — partial distance profiles / pruning effectiveness
# --------------------------------------------------------------------------- #
def figure2_pruning(
    *,
    workload: str = "ecg",
    series_length: int = 4096,
    min_length: int = 64,
    range_width: int = 32,
    profile_capacities: Sequence[int] = (4, 8, 16, 32),
    random_state: int = 0,
) -> List[Row]:
    """Figure 2: how many distance profiles stay valid / get recomputed.

    The paper illustrates the mechanism on one example; this sweep quantifies
    it — for each profile capacity ``p``, the fraction of partial profiles
    that remain valid and the fraction that must be recomputed exactly.
    """
    series = build_workload(workload, series_length, random_state=random_state)
    max_length = min_length + range_width - 1
    rows: List[Row] = []
    for capacity in profile_capacities:
        result = valmod(
            series, min_length, max_length, top_k=1, profile_capacity=int(capacity)
        )
        summary = result.pruning_summary()
        rows.append(
            {
                "workload": workload,
                "series_length": series_length,
                "min_length": min_length,
                "max_length": max_length,
                "profile_capacity": int(capacity),
                "profiles_evaluated": summary["profiles_evaluated"],
                "valid_fraction": summary["valid_fraction"],
                "recomputed_fraction": summary["recomputed_fraction"],
                "elapsed_seconds": result.elapsed_seconds,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 3 — runtime comparisons
# --------------------------------------------------------------------------- #
def figure3_length_range(
    *,
    workload: str = "ecg",
    series_length: int = 4096,
    min_length: int = 64,
    range_widths: Sequence[int] = (8, 16, 32, 64),
    algorithms: Iterable[str] = ("valmod", "stomp-range", "moen", "quickmotif"),
    random_state: int = 0,
) -> List[Row]:
    """Figure 3 (top): runtime as the motif length-range width grows.

    One row per (algorithm, range width).  The paper's claim to reproduce:
    VALMOD's runtime stays nearly flat while every competitor grows steeply
    with the range width (to the point of timing out).
    """
    series = build_workload(workload, series_length, random_state=random_state)
    rows: List[Row] = []
    for width in range_widths:
        max_length = min_length + int(width) - 1
        for algorithm in algorithms:
            result = run_algorithm(algorithm, series, min_length, max_length, top_k=1)
            rows.append(
                {
                    "figure": "3-top",
                    "workload": workload,
                    "series_length": series_length,
                    "min_length": min_length,
                    "range_width": int(width),
                    "algorithm": algorithm,
                    "elapsed_seconds": result.elapsed_seconds,
                    "best_distance": result.best_overall().distance,
                }
            )
    return rows


def figure3_series_length(
    *,
    workload: str = "ecg",
    series_lengths: Sequence[int] = (1024, 2048, 4096, 8192),
    min_length: int = 64,
    range_width: int = 16,
    algorithms: Iterable[str] = ("valmod", "stomp-range", "moen", "quickmotif"),
    random_state: int = 0,
) -> List[Row]:
    """Figure 3 (bottom): runtime as the series length grows (prefix snippets).

    The paper evaluates prefixes of 0.1M–1M points; the scaled sweep keeps the
    same doubling structure.  The claim to reproduce: every algorithm scales
    super-linearly with the series length, with VALMOD consistently the
    fastest for a fixed range.
    """
    rows: List[Row] = []
    longest = max(series_lengths)
    base_series = build_workload(workload, longest, random_state=random_state)
    max_length = min_length + range_width - 1
    for length in series_lengths:
        series = base_series.prefix(int(length))
        for algorithm in algorithms:
            result = run_algorithm(algorithm, series, min_length, max_length, top_k=1)
            rows.append(
                {
                    "figure": "3-bottom",
                    "workload": workload,
                    "series_length": int(length),
                    "min_length": min_length,
                    "range_width": range_width,
                    "algorithm": algorithm,
                    "elapsed_seconds": result.elapsed_seconds,
                    "best_distance": result.best_overall().distance,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Reproduction ablations (not in the demo paper; motivated in DESIGN.md)
# --------------------------------------------------------------------------- #
def ablation_lower_bound(
    *,
    workload: str = "ecg",
    series_length: int = 4096,
    min_length: int = 64,
    range_width: int = 32,
    random_state: int = 0,
) -> List[Row]:
    """Ablation A: pruning power of the paper bound vs. the tight bound."""
    series = build_workload(workload, series_length, random_state=random_state)
    max_length = min_length + range_width - 1
    rows: List[Row] = []
    for kind in ("paper", "tight"):
        result = valmod(
            series, min_length, max_length, top_k=1, lower_bound_kind=kind
        )
        summary = result.pruning_summary()
        rows.append(
            {
                "lower_bound_kind": kind,
                "workload": workload,
                "series_length": series_length,
                "valid_fraction": summary["valid_fraction"],
                "recomputed_fraction": summary["recomputed_fraction"],
                "elapsed_seconds": result.elapsed_seconds,
            }
        )
    return rows


def ablation_exactness(
    *,
    series_length: int = 1024,
    min_length: int = 24,
    range_width: int = 12,
    random_state: int = 0,
) -> Row:
    """Ablation B: VALMOD against the brute-force oracle on a planted workload."""
    from repro.generators.planted import generate_planted_motifs

    series, _truth = generate_planted_motifs(
        series_length,
        motif_lengths=(min_length + range_width // 2,),
        copies_per_motif=3,
        random_state=random_state,
    )
    max_length = min_length + range_width - 1
    valmod_result = valmod(series, min_length, max_length, top_k=1)
    oracle = brute_force_range(series, min_length, max_length, top_k=1)
    mismatches = 0
    largest_gap = 0.0
    for length in oracle.lengths:
        expected = oracle.motifs_at(length)[0].distance
        observed = valmod_result.motifs_at(length)[0].distance
        gap = abs(expected - observed)
        largest_gap = max(largest_gap, gap)
        if gap > 1e-6:
            mismatches += 1
    return {
        "series_length": series_length,
        "min_length": min_length,
        "max_length": max_length,
        "lengths_compared": len(oracle.lengths),
        "mismatches": mismatches,
        "largest_gap": largest_gap,
        "valmod_seconds": valmod_result.elapsed_seconds,
        "brute_force_seconds": oracle.elapsed_seconds,
        "speedup": oracle.elapsed_seconds / max(valmod_result.elapsed_seconds, 1e-9),
    }


def ranking_normalization_table(
    *,
    series_length: int = 2048,
    short_length: int = 32,
    long_length: int = 96,
    random_state: int = 0,
) -> Row:
    """Ranking demo: the length-normalised distance favours the longer planted motif.

    Two motifs are planted — a short noisy one and a long clean one.  Raw
    Euclidean distances would rank the short one first simply because fewer
    points accumulate less error; the length-normalised ranking promotes the
    longer pattern, which is the behaviour the paper motivates.
    """
    from repro.generators.planted import generate_planted_motifs

    series, truth = generate_planted_motifs(
        series_length,
        motif_lengths=(short_length, long_length),
        copies_per_motif=2,
        distortion=0.05,
        random_state=random_state,
    )
    result = valmod(series, short_length, long_length, top_k=1)
    pairs = result.all_motifs()
    by_raw = sorted(pairs, key=lambda pair: pair.distance)
    by_normalized = sorted(pairs, key=lambda pair: pair.normalized_distance)
    return {
        "planted_lengths": [motif.length for motif in truth],
        "best_raw_length": by_raw[0].window if by_raw else None,
        "best_normalized_length": by_normalized[0].window if by_normalized else None,
        "num_pairs": len(pairs),
        "raw_top3_lengths": [pair.window for pair in by_raw[:3]],
        "normalized_top3_lengths": [pair.window for pair in by_normalized[:3]],
    }
