"""Experiment harness: workloads, timing and figure regeneration.

Every figure of the paper's evaluation maps to one function in
:mod:`repro.harness.figures`; the benchmark suite under ``benchmarks/`` is a
thin pytest-benchmark wrapper around those functions, and the same functions
can be called directly (or through the CLI) to print the figure data.
"""

from repro.harness.extensions import (
    ablation_anytime_scrimp,
    extension_domains_table,
    skimp_vs_valmod,
    streaming_throughput,
)
from repro.harness.figures import (
    figure1_fixed_length,
    figure1_valmap,
    figure2_pruning,
    figure3_length_range,
    figure3_series_length,
    ablation_exactness,
    ablation_lower_bound,
    ranking_normalization_table,
)
from repro.harness.runner import ALGORITHMS, run_algorithm, compare_algorithms
from repro.harness.tables import (
    format_markdown_table,
    format_table,
    save_rows_csv,
    select_columns,
)
from repro.harness.timing import Timer, timed_call
from repro.harness.workloads import Workload, build_workload, WORKLOADS

__all__ = [
    "ALGORITHMS",
    "Timer",
    "WORKLOADS",
    "Workload",
    "ablation_anytime_scrimp",
    "ablation_exactness",
    "ablation_lower_bound",
    "build_workload",
    "compare_algorithms",
    "extension_domains_table",
    "figure1_fixed_length",
    "figure1_valmap",
    "figure2_pruning",
    "figure3_length_range",
    "figure3_series_length",
    "format_markdown_table",
    "format_table",
    "ranking_normalization_table",
    "run_algorithm",
    "save_rows_csv",
    "select_columns",
    "skimp_vs_valmod",
    "streaming_throughput",
    "timed_call",
]
