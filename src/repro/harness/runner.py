"""Uniform dispatch over the competing algorithms.

The figures compare VALMOD against its competitors on identical inputs; this
module keeps every algorithm behind the same signature
``(series, min_length, max_length, **options) -> RangeDiscoveryResult`` so
the figure code and the CLI can iterate over algorithm names.

Since the unified analysis API landed, the dispatch itself lives in the
:mod:`repro.api` registry: each call here builds an
:class:`~repro.api.requests.AnalysisRequest` against an
:class:`~repro.api.Analysis` session and returns the cross-algorithm
comparable view.  ``compare_algorithms`` shares **one** session across every
algorithm, so the series is validated once and the sliding statistics are
computed once for the whole comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.api.registry import algorithm_keys, resolve_algorithm
from repro.api.requests import AnalysisRequest
from repro.api.session import Analysis, EngineConfig
from repro.baselines.base import RangeDiscoveryResult
from repro.exceptions import InvalidParameterError

__all__ = ["ALGORITHMS", "run_algorithm", "compare_algorithms"]

#: CLI/figure algorithm names mapped to registry keys of the ``motifs`` kind.
#: Kept as a mapping (not a function table) so ``sorted(ALGORITHMS)`` still
#: feeds the CLI's ``choices=`` and the figure code unchanged.
ALGORITHMS: Dict[str, str] = {
    "valmod": "valmod",
    "stomp-range": "stomp_range",
    "moen": "moen",
    "quickmotif": "quick_motif",
    "brute-force": "brute",
}

#: Algorithms that accept the ``engine=`` / ``n_jobs=`` execution knobs
#: (i.e. route their profile computations through :mod:`repro.engine`).
#: Derived from the registry's capability metadata.
ENGINE_AWARE = frozenset(
    name
    for name, key in ALGORITHMS.items()
    if resolve_algorithm("motifs", key).engine_aware
)


def _session(series, engine, n_jobs, block_size=None, kernel=None, store=None) -> Analysis:
    if isinstance(series, Analysis):
        return series
    return Analysis(
        series,
        engine=EngineConfig(
            executor=engine, n_jobs=n_jobs, block_size=block_size, kernel=kernel
        ),
        store=store,
    )


def run_algorithm(
    name: str, series, min_length: int, max_length: int, **options
) -> RangeDiscoveryResult:
    """Run one named algorithm on a series with a length range.

    ``series`` may also be an :class:`~repro.api.Analysis` session, in which
    case its shared statistics (and engine configuration) are reused.

    ``service_url=`` (keyword option) switches to the service-backed mode:
    instead of computing in-process, the request document is POSTed to a
    running ``repro serve`` endpoint and the returned envelope's
    cross-algorithm view is used — identical results (the service runs the
    same registry), but computed (and cached) in the server process.
    ``service_timeout=`` (seconds, default 300) bounds the wait for the
    server's answer — large series/ranges legitimately compute for minutes.

    ``series`` may also be a **content digest string**: pass ``store=`` (a
    :class:`repro.store.SeriesStore`) to resolve it locally, or
    ``service_url=`` to let the server resolve it from *its* catalog — the
    harness then never holds the values at all.
    """
    if name not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        )
    engine = options.pop("engine", None)
    n_jobs = options.pop("n_jobs", None)
    block_size = options.pop("block_size", None)
    kernel = options.pop("kernel", None)
    store = options.pop("store", None)
    service_url = options.pop("service_url", None)
    service_timeout = float(options.pop("service_timeout", 300.0))
    if name not in ENGINE_AWARE:
        # The sweep kernel is kept: unlike the executor knobs it also
        # applies to the plain serial STOMP paths.
        engine, n_jobs, block_size = None, None, None
    if "top_k" in options and ALGORITHMS[name] in ("moen", "quick_motif"):
        options.pop("top_k")  # single best pair per length by design
    request = AnalysisRequest(
        kind="motifs",
        algo=ALGORITHMS[name],
        params={"min_length": int(min_length), "max_length": int(max_length), **options},
    )
    if service_url is not None:
        from repro.service.client import ServiceClient

        values = series.values if isinstance(series, Analysis) else series
        client = ServiceClient.from_url(service_url, timeout=service_timeout)
        result, _source = client.analyze(values, request)
        return result.range_result()
    session = _session(series, engine, n_jobs, block_size, kernel, store)
    return session.run(request).range_result()


def compare_algorithms(
    series,
    min_length: int,
    max_length: int,
    *,
    algorithms: Iterable[str] = ("valmod", "stomp-range", "moen", "quickmotif"),
    engine: object | None = None,
    n_jobs: int | None = None,
    block_size: int | None = None,
    kernel: str | None = None,
    store: object | None = None,
    service_url: str | None = None,
    **options,
) -> List[RangeDiscoveryResult]:
    """Run several algorithms on the same input and return their results.

    One :class:`~repro.api.Analysis` session is shared across the whole
    comparison (one validation, one statistics pass).  ``engine`` /
    ``n_jobs`` / ``block_size`` reach the algorithms whose registry entry
    is engine-aware (see :data:`ENGINE_AWARE`) and are ignored by the rest
    (``kernel`` selects the STOMP sweep kernel and also reaches the plain
    serial paths),
    so a single call can compare engine-routed and plain implementations on
    identical inputs.  ``service_url`` routes every algorithm through a
    running analysis service instead of computing in-process (the server's
    session pool then plays the shared-session role).

    ``series`` may be a **content digest string** resolved through
    ``store=`` (locally) or by the server's catalog (with ``service_url``)
    — so ``compare_algorithms(store=store, series=digest, ...)``-style
    calls never materialise the values in the harness process.
    """
    if service_url is not None:
        values = series.values if isinstance(series, Analysis) else series
        return [
            run_algorithm(
                name,
                values,
                min_length,
                max_length,
                service_url=service_url,
                **dict(options),
            )
            for name in algorithms
        ]
    session = _session(series, engine, n_jobs, block_size, kernel, store)
    # One session for every algorithm: the non-engine-aware runners simply
    # never read session.engine, so no second "plain" session is needed.
    return [
        run_algorithm(name, session, min_length, max_length, **dict(options))
        for name in algorithms
    ]


def available_algorithms() -> List[str]:
    """Registry keys of every motif algorithm (for diagnostics and docs)."""
    return algorithm_keys("motifs")
