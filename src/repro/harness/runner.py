"""Uniform dispatch over the competing algorithms.

The figures compare VALMOD against its competitors on identical inputs; this
module gives every algorithm the same signature
``(series, min_length, max_length, **options) -> RangeDiscoveryResult`` so
the figure code and the CLI can iterate over algorithm names.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.baselines.base import RangeDiscoveryResult
from repro.baselines.brute_force_range import brute_force_range
from repro.baselines.moen import moen
from repro.baselines.quick_motif import quick_motif_range
from repro.baselines.stomp_range import stomp_range
from repro.core.valmod import valmod
from repro.exceptions import InvalidParameterError

__all__ = ["ALGORITHMS", "run_algorithm", "compare_algorithms"]


def _run_valmod(series, min_length: int, max_length: int, **options) -> RangeDiscoveryResult:
    """Adapt :func:`repro.core.valmod.valmod` to the common result shape."""
    top_k = int(options.pop("top_k", 1))
    result = valmod(series, min_length, max_length, top_k=top_k, **options)
    return RangeDiscoveryResult(
        algorithm="valmod",
        motifs_by_length={
            length: list(result.length_results[length].motifs) for length in result.lengths
        },
        elapsed_seconds=result.elapsed_seconds,
        extra={
            **result.pruning_summary(),
            "total_recomputed_profiles": result.extra.get("total_recomputed_profiles", 0.0),
        },
    )


def _run_stomp_range(series, min_length: int, max_length: int, **options) -> RangeDiscoveryResult:
    return stomp_range(
        series, min_length, max_length, top_k=int(options.pop("top_k", 1)), **options
    )


def _run_brute_force(series, min_length: int, max_length: int, **options) -> RangeDiscoveryResult:
    return brute_force_range(
        series, min_length, max_length, top_k=int(options.pop("top_k", 1)), **options
    )


def _run_moen(series, min_length: int, max_length: int, **options) -> RangeDiscoveryResult:
    options.pop("top_k", None)  # MOEN reports the single best pair per length
    return moen(series, min_length, max_length, **options)


def _run_quick_motif(series, min_length: int, max_length: int, **options) -> RangeDiscoveryResult:
    options.pop("top_k", None)  # QuickMotif reports the single best pair per length
    return quick_motif_range(series, min_length, max_length, **options)


#: Registry of the algorithms the figures and the CLI can run.
ALGORITHMS: Dict[str, Callable[..., RangeDiscoveryResult]] = {
    "valmod": _run_valmod,
    "stomp-range": _run_stomp_range,
    "moen": _run_moen,
    "quickmotif": _run_quick_motif,
    "brute-force": _run_brute_force,
}

#: Algorithms that accept the ``engine=`` / ``n_jobs=`` execution knobs
#: (i.e. route their profile computations through :mod:`repro.engine`).
#: ``run_algorithm`` silently drops the knobs for the others so one option
#: dict can drive a mixed comparison.
ENGINE_AWARE = frozenset({"valmod", "stomp-range"})


def run_algorithm(
    name: str, series, min_length: int, max_length: int, **options
) -> RangeDiscoveryResult:
    """Run one named algorithm on a series with a length range."""
    try:
        runner = ALGORITHMS[name]
    except KeyError as error:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from error
    if name not in ENGINE_AWARE:
        options.pop("engine", None)
        options.pop("n_jobs", None)
    return runner(series, min_length, max_length, **options)


def compare_algorithms(
    series,
    min_length: int,
    max_length: int,
    *,
    algorithms: Iterable[str] = ("valmod", "stomp-range", "moen", "quickmotif"),
    engine: object | None = None,
    n_jobs: int | None = None,
    **options,
) -> List[RangeDiscoveryResult]:
    """Run several algorithms on the same input and return their results.

    ``engine`` / ``n_jobs`` are forwarded to the algorithms that support
    them (see :data:`ENGINE_AWARE`) and ignored by the rest, so a single
    call can compare engine-routed and plain implementations on identical
    inputs.
    """
    if engine is not None:
        options = {**options, "engine": engine, "n_jobs": n_jobs}
    return [
        run_algorithm(name, series, min_length, max_length, **dict(options))
        for name in algorithms
    ]
