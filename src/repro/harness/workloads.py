"""Benchmark workloads.

The paper's experiments use two main datasets — an ECG recording and the
ASTRO light-curve collection — plus the Seismology and Entomology series of
the demo scenarios, at sizes between 0.1M and 1M points with 24-hour
timeouts on a C implementation.  A pure-Python reproduction cannot run at
that scale, so every workload here is a scaled-down synthetic stand-in (see
DESIGN.md for the substitution argument); the *relative* behaviour of the
algorithms is what the benchmarks compare.

A :class:`Workload` couples a generator with the default length range used by
the figures, so every benchmark and example refers to datasets by name
("ecg", "astro", ...) exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.exceptions import InvalidParameterError
from repro.generators import (
    generate_astro,
    generate_climate,
    generate_ecg,
    generate_epg,
    generate_gait,
    generate_random_walk,
    generate_respiration,
    generate_seismic,
)
from repro.series.dataseries import DataSeries

__all__ = ["Workload", "WORKLOADS", "build_workload"]


@dataclass(frozen=True)
class Workload:
    """A named benchmark dataset plus its default analysis parameters.

    Attributes
    ----------
    name:
        Dataset name as used in the paper ("ecg", "astro", ...).
    generator:
        Callable ``(length, random_state) -> DataSeries``.
    default_length:
        Series length used when the benchmark does not sweep the size.
    min_length:
        Default ``l_min`` (the paper uses 100 on million-point series; the
        scaled workloads use a proportionally smaller base length).
    default_range_width:
        Default width of the motif length range.
    """

    name: str
    generator: Callable[[int, int], DataSeries]
    default_length: int = 8192
    min_length: int = 64
    default_range_width: int = 16

    def build(self, length: int | None = None, *, random_state: int = 0) -> DataSeries:
        """Instantiate the series (optionally overriding its length)."""
        size = self.default_length if length is None else int(length)
        if size < 2:
            raise InvalidParameterError(f"workload length must be >= 2, got {size}")
        return self.generator(size, random_state)


def _ecg(length: int, random_state: int) -> DataSeries:
    return generate_ecg(length, beat_period=220, random_state=random_state, name="ecg")


def _astro(length: int, random_state: int) -> DataSeries:
    return generate_astro(
        length, transit_duration=180, transit_period=900, random_state=random_state, name="astro"
    )


def _seismic(length: int, random_state: int) -> DataSeries:
    return generate_seismic(length, event_duration=160, random_state=random_state, name="seismic")


def _epg(length: int, random_state: int) -> DataSeries:
    return generate_epg(length, burst_duration=140, random_state=random_state, name="epg")


def _random_walk(length: int, random_state: int) -> DataSeries:
    return generate_random_walk(length, random_state=random_state, name="random-walk")


def _climate(length: int, random_state: int) -> DataSeries:
    return generate_climate(
        length, season_period=1460, episode_duration=90, random_state=random_state, name="climate"
    )


def _gait(length: int, random_state: int) -> DataSeries:
    return generate_gait(length, cycle_period=160, random_state=random_state, name="gait")


def _respiration(length: int, random_state: int) -> DataSeries:
    return generate_respiration(
        length, breath_period=80, apnea_duration=320, random_state=random_state, name="respiration"
    )


#: The named workloads the figures draw from.  "ecg" and "astro" are the two
#: datasets of Figure 3; "seismic" and "epg" the demo scenarios; the rest are
#: extension workloads for the additional domains the introduction motivates.
WORKLOADS: Dict[str, Workload] = {
    "ecg": Workload(name="ecg", generator=_ecg),
    "astro": Workload(name="astro", generator=_astro),
    "seismic": Workload(name="seismic", generator=_seismic),
    "epg": Workload(name="epg", generator=_epg),
    "random-walk": Workload(name="random-walk", generator=_random_walk),
    "climate": Workload(name="climate", generator=_climate, min_length=48),
    "gait": Workload(name="gait", generator=_gait, min_length=64),
    "respiration": Workload(name="respiration", generator=_respiration, min_length=48),
}


def build_workload(
    name: str, length: int | None = None, *, random_state: int = 0
) -> DataSeries:
    """Instantiate a named workload series."""
    try:
        workload = WORKLOADS[name]
    except KeyError as error:
        raise InvalidParameterError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from error
    return workload.build(length, random_state=random_state)
